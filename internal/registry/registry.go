// Package registry is the multi-tenant model registry: thousands of
// named models served from one process, each tenant a full instance of
// the serving engine — its own shards, admission bucket, decay
// maintenance loop, durability directory and replication hub — created
// on first write and addressed by URL path (/t/{tenant}/classify) or
// X-Tenant header. The heavy-traffic premise of the roadmap is many
// small models (per-user, per-sensor, per-topic), not one big one;
// this package is the layer that turns the single-tenant engine into
// that shape.
//
// Resource bounds come from two mechanisms:
//
//   - Quota carving: each tenant's admission bucket is filled at a
//     rate carved from the registry's global node-read budget
//     (NodesPerSecond / MaxResident by default, overridable per
//     tenant), so one hot tenant exhausts its own quota and degrades
//     its own answers while the other tenants' refinement budgets are
//     untouched.
//   - LRU paging: under a configurable resident-model (and optional
//     resident-bytes) cap, the least-recently-used idle tenant is
//     checkpointed — snapshot + WAL truncate, the exact durable-drain
//     path — and evicted from memory. The next request for it blocks
//     on a reload through standard recovery. Because persist
//     round-trips digit-identically, an evicted-then-reloaded tenant
//     answers exactly as its never-evicted twin would; eviction is
//     safe by construction.
//
// On disk a registry root holds a flock'd LOCK, a REGISTRY manifest
// enumerating tenants and their checkpoint generations, and one
// durability subdirectory per tenant under tenants/ — each with its
// own MANIFEST, snapshot, WAL segments and LOCK, exactly the layout a
// single-tenant server uses, so a tenant directory can be inspected
// (or, offline, served) with the existing tools.
package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"bayestree/internal/persist"
	"bayestree/internal/server"
)

// DefaultMaxResident is the resident-model cap when Options leaves
// MaxResident zero.
const DefaultMaxResident = 64

// DefaultTenantName is the tenant the legacy single-tenant routes
// alias when no X-Tenant header names one.
const DefaultTenantName = "default"

// tenantConfigName is the per-tenant config filename inside a tenant's
// durability directory — written at creation, read at every reload, so
// a tenant keeps its creation-time shape (dim, labels, shards, decay)
// across paging and process restarts.
const tenantConfigName = "TENANT.json"

// tenantsSubdir is the directory under the registry root that holds
// one durability subdirectory per tenant.
const tenantsSubdir = "tenants"

// Tenant is what the registry requires of a per-tenant server: the
// HTTP surface to delegate requests to, the checkpoint/close sequence
// eviction runs, and the size observables the paging caps read. Both
// engine workloads (*server.Server, *server.ClusterServer) satisfy it.
type Tenant interface {
	// Handler serves the tenant's endpoints (paths rooted at /).
	Handler() http.Handler
	// Checkpoint folds the WAL into a new snapshot generation and
	// truncates — the eviction write-out.
	Checkpoint() error
	// CloseDurability closes the WAL and releases the tenant directory
	// lock after the eviction checkpoint.
	CloseDurability() error
	// Close stops background maintenance.
	Close()
	// SetDraining flips the tenant's draining state.
	SetDraining(bool)
	// Len is the tenant's observation count.
	Len() int
	// ApproxBytes estimates the tenant's resident memory.
	ApproxBytes() int64
	// Generation is the tenant's checkpoint generation, recorded in the
	// registry manifest at eviction.
	Generation() uint64
}

// TenantConfig is a tenant's creation-time shape. The zero value of
// any field means "use the registry default" (Options.Defaults); the
// resolved config is persisted as TENANT.json in the tenant's
// directory so reloads and restarts reproduce it.
type TenantConfig struct {
	// Dim is the observation dimensionality.
	Dim int `json:"dim,omitempty"`
	// Labels is the class-label set (classification workload only).
	Labels []int `json:"labels,omitempty"`
	// Shards is the intra-tenant shard count. Tenants default to one
	// shard: with thousands of small models per process, parallelism
	// comes from tenant fan-out, not intra-model sharding.
	Shards int `json:"shards,omitempty"`
	// NodesPerSecond overrides the tenant's carved admission quota;
	// 0 carves NodesPerSecond/MaxResident from the registry's global
	// budget.
	NodesPerSecond float64 `json:"nodes_per_second,omitempty"`
	// DefaultBudget and MaxBudget mirror server.Config.
	DefaultBudget int `json:"default_budget,omitempty"`
	MaxBudget     int `json:"max_budget,omitempty"`
	// DecayLambda, DecayMinWeight and DecayEveryMS configure the
	// tenant's exponential forgetting (0 lambda = append-only). The
	// decay epoch is logical and stored in the tenant's snapshot, so a
	// paged-out tenant's clock pauses while it is cold.
	DecayLambda    float64 `json:"decay_lambda,omitempty"`
	DecayMinWeight float64 `json:"decay_min_weight,omitempty"`
	DecayEveryMS   int64   `json:"decay_every_ms,omitempty"`
}

// withDefaults fills zero fields from d.
func (tc TenantConfig) withDefaults(d TenantConfig) TenantConfig {
	if tc.Dim == 0 {
		tc.Dim = d.Dim
	}
	if len(tc.Labels) == 0 {
		tc.Labels = append([]int(nil), d.Labels...)
	}
	if tc.Shards == 0 {
		tc.Shards = d.Shards
	}
	if tc.Shards == 0 {
		tc.Shards = 1
	}
	if tc.NodesPerSecond == 0 {
		tc.NodesPerSecond = d.NodesPerSecond
	}
	if tc.DefaultBudget == 0 {
		tc.DefaultBudget = d.DefaultBudget
	}
	if tc.MaxBudget == 0 {
		tc.MaxBudget = d.MaxBudget
	}
	if tc.DecayLambda == 0 {
		tc.DecayLambda = d.DecayLambda
	}
	if tc.DecayMinWeight == 0 {
		tc.DecayMinWeight = d.DecayMinWeight
	}
	if tc.DecayEveryMS == 0 {
		tc.DecayEveryMS = d.DecayEveryMS
	}
	return tc
}

// ServerConfig shapes the tenant's server.Config from its resolved
// TenantConfig plus the carved admission quota.
func (tc TenantConfig) ServerConfig(carvedNPS float64) server.Config {
	nps := tc.NodesPerSecond
	if nps == 0 {
		nps = carvedNPS
	}
	cfg := server.Config{
		DefaultBudget:  tc.DefaultBudget,
		MaxBudget:      tc.MaxBudget,
		NodesPerSecond: nps,
	}
	if tc.DecayLambda > 0 {
		cfg.Decay.Lambda = tc.DecayLambda
		cfg.Decay.MinWeight = tc.DecayMinWeight
		cfg.DecayEvery = time.Duration(tc.DecayEveryMS) * time.Millisecond
	}
	return cfg
}

// Backend opens tenants of one workload; ClassifyBackend and
// ClusterBackend are the two engine instantiations.
type Backend[T Tenant] struct {
	// Workload names the backend ("classify" or "cluster"); recorded in
	// the registry manifest and checked at open, so a classification
	// registry cannot silently decode clustering snapshots.
	Workload string
	// CreatePaths lists the tenant-relative POST paths whose first hit
	// auto-creates the tenant — "created on first write".
	CreatePaths map[string]bool
	// Open opens (or bootstraps) one tenant's durable state at dir and
	// completes recovery, returning a serving tenant. carvedNPS is the
	// admission quota the registry carved for this tenant.
	Open func(dir string, tc TenantConfig, carvedNPS float64, dopts server.DurabilityOptions) (T, error)
}

// Options configure a registry.
type Options struct {
	// Dir is the registry root: LOCK, REGISTRY manifest and one
	// durability subdirectory per tenant under tenants/. Required.
	Dir string
	// MaxResident caps how many tenants are resident in memory at once
	// (0 = DefaultMaxResident); the LRU idle tenant beyond the cap is
	// checkpointed and evicted.
	MaxResident int
	// MaxResidentBytes additionally caps the estimated resident bytes
	// across tenants (0 = no byte cap). Enforced at load time, never
	// below one resident tenant.
	MaxResidentBytes int64
	// NodesPerSecond is the global node-read budget; each tenant's
	// admission bucket is carved NodesPerSecond/MaxResident from it
	// unless its TenantConfig overrides. 0 disables admission.
	NodesPerSecond float64
	// Defaults fills unset TenantConfig fields at tenant creation.
	Defaults TenantConfig
	// DefaultTenant is the tenant the legacy single-tenant routes alias
	// ("" = DefaultTenantName).
	DefaultTenant string
	// FsyncEvery and SegmentBytes are passed to every tenant's WAL
	// (see server.DurabilityOptions).
	FsyncEvery   time.Duration
	SegmentBytes int64
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.MaxResident <= 0 {
		o.MaxResident = DefaultMaxResident
	}
	if o.DefaultTenant == "" {
		o.DefaultTenant = DefaultTenantName
	}
	if o.Defaults.Shards == 0 {
		o.Defaults.Shards = 1
	}
	return o
}

// tenant lifecycle states. Transitions: cold → loading → resident →
// evicting → cold. A request on a loading or evicting tenant waits on
// the handle's cond; it can never observe a half-closed engine because
// srv is only readable in the resident state and eviction requires
// inflight == 0.
const (
	stateCold = iota
	stateLoading
	stateResident
	stateEvicting
)

// handle is one tenant's in-memory lifecycle record. All fields are
// guarded by the registry mutex; cond shares it.
type handle[T Tenant] struct {
	name    string
	cfg     TenantConfig // resolved creation config (persisted copy wins at load)
	state   int
	srv     T
	handler http.Handler
	// inflight counts requests currently inside the tenant's handler;
	// eviction only picks handles with inflight == 0, so a request
	// either wins the LRU touch (pinning the tenant) or arrives during
	// eviction and blocks until the reload.
	inflight int
	lastUse  int64
	cond     *sync.Cond
}

// Registry serves a population of named tenants with LRU paging. All
// methods are safe for concurrent use.
type Registry[T Tenant] struct {
	opts    Options
	backend Backend[T]
	lock    *os.File

	mu       sync.Mutex
	tenants  map[string]*handle[T] // touched tenants (any state)
	known    map[string]uint64     // every tenant ever created → last recorded generation
	clock    int64                 // LRU touch counter
	resident int
	draining bool

	// manifest flushing: writes coalesce through a background flusher
	// (a crash before a flush is healed by directory adoption at the
	// next Open), with a final synchronous save at Close.
	manifestMu sync.Mutex
	dirty      chan struct{}
	stopFlush  chan struct{}
	flushDone  chan struct{}
	closeOnce  sync.Once
	closeErr   error

	coldLoads     atomic.Int64
	creations     atomic.Int64
	evictions     atomic.Int64
	evictErrors   atomic.Int64
	loadErrors    atomic.Int64
	coldLoadNs    atomic.Int64
	coldLoadMaxNs atomic.Int64
}

// ErrUnknownTenant is returned when a read addresses a tenant that was
// never created; the HTTP layer maps it to 404.
var ErrUnknownTenant = fmt.Errorf("registry: unknown tenant")

// ErrDraining rejects requests while the registry checkpoints all
// tenants for shutdown; the HTTP layer maps it to 503.
var ErrDraining = fmt.Errorf("registry: draining")

// ErrInvalidName rejects tenant names outside ValidTenantName; the
// HTTP layer maps it to 400.
var ErrInvalidName = fmt.Errorf("registry: invalid tenant name")

// ValidTenantName reports whether name is usable as a tenant name (and
// therefore a directory name): 1–64 characters from [A-Za-z0-9._-],
// not starting with a dot.
func ValidTenantName(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Open opens (or creates) a registry root: flock the root, sweep
// stranded temp files from the whole tree (a crash mid-eviction
// strands them inside tenant subdirectories, which a cold tenant might
// not open for days), load the REGISTRY manifest and adopt any tenant
// directory a crash left out of it. No tenant model is loaded — cold
// tenants stay on disk until their first request.
func Open[T Tenant](opts Options, backend Backend[T]) (*Registry[T], error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("registry: root dir required")
	}
	if backend.Open == nil || backend.Workload == "" {
		return nil, fmt.Errorf("registry: backend incomplete")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(opts.Dir, tenantsSubdir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	lock, err := lockRoot(opts.Dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Registry[T], error) {
		lock.Close()
		return nil, err
	}
	// The tree sweep is the multi-tenant form of the single-dir startup
	// sweep: per-tenant subdirectories included.
	if err := persist.RemoveStaleTempsTree(opts.Dir); err != nil {
		return fail(err)
	}
	m, had, err := persist.LoadRegistryManifest(opts.Dir)
	if err != nil {
		return fail(err)
	}
	if had && m.Workload != backend.Workload {
		return fail(fmt.Errorf("registry: root %s serves workload %q, not %q", opts.Dir, m.Workload, backend.Workload))
	}
	r := &Registry[T]{
		opts:      opts,
		backend:   backend,
		lock:      lock,
		tenants:   make(map[string]*handle[T]),
		known:     make(map[string]uint64),
		dirty:     make(chan struct{}, 1),
		stopFlush: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	for _, t := range m.Tenants {
		r.known[t.Name] = t.Generation
	}
	adopted, err := r.adoptStrays()
	if err != nil {
		return fail(err)
	}
	if !had || adopted {
		if err := r.saveManifest(); err != nil {
			return fail(err)
		}
	}
	go r.flushLoop()
	return r, nil
}

// adoptStrays scans the tenants directory for subdirectories carrying
// a TENANT.json that the manifest does not list — the crash window
// between tenant creation and the next manifest flush — and adopts
// them, reporting whether anything changed.
func (r *Registry[T]) adoptStrays() (bool, error) {
	entries, err := os.ReadDir(filepath.Join(r.opts.Dir, tenantsSubdir))
	if err != nil {
		return false, fmt.Errorf("registry: %w", err)
	}
	adopted := false
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, ok := r.known[name]; ok || !ValidTenantName(name) {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.tenantDir(name), tenantConfigName)); err != nil {
			continue // debris from a crash before TENANT.json: ignored
		}
		gm, had, err := persist.LoadManifest(r.tenantDir(name))
		if err != nil {
			return false, fmt.Errorf("registry: adopt %s: %w", name, err)
		}
		var gen uint64
		if had {
			gen = gm.Generation
		}
		r.known[name] = gen
		adopted = true
	}
	return adopted, nil
}

// lockRoot takes the registry root's non-blocking exclusive flock —
// the single-writer guarantee for the whole tree. Each tenant's own
// LOCK is additionally taken while that tenant is resident (by the
// standard durable-open path), so even a process that bypasses the
// root and points a single-tenant server at one tenant subdirectory
// cannot become a second writer on a loaded tenant.
func lockRoot(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: lock %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("registry: root %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

// tenantDir names a tenant's durability subdirectory.
func (r *Registry[T]) tenantDir(name string) string {
	return filepath.Join(r.opts.Dir, tenantsSubdir, name)
}

// carvedNPS is the admission quota a tenant gets from the global
// budget when its config does not override: an equal share per
// resident slot, so the aggregate refinement work across a full
// residency set tracks the configured global capacity.
func (r *Registry[T]) carvedNPS() float64 {
	if r.opts.NodesPerSecond <= 0 {
		return 0
	}
	return r.opts.NodesPerSecond / float64(r.opts.MaxResident)
}

// With runs fn against the named tenant, creating it (when create is
// true) or loading it from disk if cold, and pins it resident for the
// duration — the programmatic form of one HTTP request.
func (r *Registry[T]) With(name string, create bool, fn func(T) error) error {
	h, srv, err := r.acquire(name, create, nil)
	if err != nil {
		return err
	}
	defer r.release(h)
	return fn(srv)
}

// Create ensures the named tenant exists, creating it with tc (zero
// fields fall back to the registry defaults) — the PUT /t/{tenant}
// path. It reports whether the tenant was newly created; an existing
// tenant keeps its creation-time config and tc is ignored.
func (r *Registry[T]) Create(name string, tc TenantConfig) (bool, error) {
	r.mu.Lock()
	_, existed := r.known[name]
	r.mu.Unlock()
	h, _, err := r.acquire(name, true, &tc)
	if err != nil {
		return false, err
	}
	r.release(h)
	return !existed, nil
}

// acquire resolves a tenant to a resident server, loading or creating
// as needed, and increments its inflight pin. The caller must release.
// cfg, when non-nil, seeds the creation config of a tenant that does
// not exist yet (it has no effect on existing tenants).
func (r *Registry[T]) acquire(name string, create bool, cfg *TenantConfig) (*handle[T], T, error) {
	var zero T
	if !ValidTenantName(name) {
		return nil, zero, fmt.Errorf("%w %q", ErrInvalidName, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.draining {
			return nil, zero, ErrDraining
		}
		h := r.tenants[name]
		if h == nil {
			_, exists := r.known[name]
			if !exists && !create {
				return nil, zero, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
			}
			h = &handle[T]{name: name, state: stateCold}
			h.cond = sync.NewCond(&r.mu)
			r.tenants[name] = h
		}
		if cfg != nil && h.state == stateCold {
			if _, exists := r.known[name]; !exists {
				h.cfg = *cfg
			}
		}
		switch h.state {
		case stateResident:
			h.inflight++
			r.clock++
			h.lastUse = r.clock
			return h, h.srv, nil
		case stateLoading, stateEvicting:
			h.cond.Wait()
		case stateCold:
			if _, exists := r.known[name]; !exists && !create {
				// The handle can outlive a failed create; re-check.
				return nil, zero, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
			}
			h.state = stateLoading
			srv, err := r.load(h) // drops and reacquires r.mu
			if err != nil {
				h.state = stateCold
				h.cond.Broadcast()
				return nil, zero, err
			}
			h.srv = srv
			h.handler = srv.Handler()
			h.state = stateResident
			r.resident++
			h.inflight++
			r.clock++
			h.lastUse = r.clock
			h.cond.Broadcast()
			over := r.overCapLocked()
			if over {
				// Evict outside this lock scope; the pin we hold keeps the
				// tenant we just loaded safe.
				r.mu.Unlock()
				r.maybeEvict()
				r.mu.Lock()
			}
			return h, h.srv, nil
		}
	}
}

// release drops a request's inflight pin.
func (r *Registry[T]) release(h *handle[T]) {
	r.mu.Lock()
	h.inflight--
	if h.inflight == 0 {
		h.cond.Broadcast()
	}
	r.mu.Unlock()
}

// load opens (or creates) a cold tenant's durable state. Called with
// r.mu held and h.state == stateLoading; the lock is dropped for the
// disk work — other tenants keep serving — and reacquired before
// return.
func (r *Registry[T]) load(h *handle[T]) (T, error) {
	var zero T
	_, exists := r.known[h.name]
	r.mu.Unlock()
	defer r.mu.Lock()
	start := time.Now()
	dir := r.tenantDir(h.name)
	var tc TenantConfig
	if exists {
		loaded, err := loadTenantConfig(dir)
		if err != nil {
			r.loadErrors.Add(1)
			return zero, err
		}
		tc = loaded.withDefaults(r.opts.Defaults)
	} else {
		tc = h.cfg.withDefaults(r.opts.Defaults)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			r.loadErrors.Add(1)
			return zero, fmt.Errorf("registry: create tenant %s: %w", h.name, err)
		}
		if err := saveTenantConfig(dir, tc); err != nil {
			r.loadErrors.Add(1)
			return zero, err
		}
	}
	dopts := server.DurabilityOptions{Dir: dir, FsyncEvery: r.opts.FsyncEvery, SegmentBytes: r.opts.SegmentBytes}
	srv, err := r.backend.Open(dir, tc, r.carvedNPS(), dopts)
	if err != nil {
		r.loadErrors.Add(1)
		return zero, fmt.Errorf("registry: tenant %s: %w", h.name, err)
	}
	ns := time.Since(start).Nanoseconds()
	r.coldLoads.Add(1)
	r.coldLoadNs.Add(ns)
	for {
		old := r.coldLoadMaxNs.Load()
		if ns <= old || r.coldLoadMaxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	if !exists {
		r.creations.Add(1)
		r.mu.Lock()
		r.known[h.name] = 0
		r.mu.Unlock()
		r.markDirty()
	}
	h.cfg = tc
	return srv, nil
}

// overCapLocked reports whether the resident set exceeds the paging
// caps. The byte check never evicts below one resident tenant — a
// single tenant larger than the cap would otherwise thrash on every
// request.
func (r *Registry[T]) overCapLocked() bool {
	if r.resident > r.opts.MaxResident {
		return true
	}
	if r.opts.MaxResidentBytes > 0 && r.resident > 1 {
		return r.residentBytesLocked() > r.opts.MaxResidentBytes
	}
	return false
}

// residentBytesLocked sums the resident tenants' memory estimates.
func (r *Registry[T]) residentBytesLocked() int64 {
	var total int64
	for _, h := range r.tenants {
		if h.state == stateResident {
			total += h.srv.ApproxBytes()
		}
	}
	return total
}

// maybeEvict pages out LRU idle tenants until the caps are satisfied
// (or no idle victim exists — busy tenants are never evicted under a
// request).
func (r *Registry[T]) maybeEvict() {
	for {
		r.mu.Lock()
		if !r.overCapLocked() {
			r.mu.Unlock()
			return
		}
		var victim *handle[T]
		for _, h := range r.tenants {
			if h.state == stateResident && h.inflight == 0 &&
				(victim == nil || h.lastUse < victim.lastUse) {
				victim = h
			}
		}
		if victim == nil {
			r.mu.Unlock()
			return
		}
		victim.state = stateEvicting
		r.resident--
		srv := victim.srv
		r.mu.Unlock()

		gen, err := r.checkpointClose(srv)
		r.mu.Lock()
		if err != nil {
			// The checkpoint failed; the model is intact in memory, so the
			// tenant reverts to resident (its maintenance loop is stopped —
			// the next successful eviction/reload restores it) rather than
			// losing unflushed writes.
			victim.state = stateResident
			r.resident++
			r.evictErrors.Add(1)
			victim.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		var zero T
		victim.srv = zero
		victim.handler = nil
		victim.state = stateCold
		r.known[victim.name] = gen
		victim.cond.Broadcast()
		r.mu.Unlock()
		r.evictions.Add(1)
		r.markDirty()
	}
}

// checkpointClose runs the eviction write-out: stop maintenance, fold
// the WAL into a fresh snapshot generation, close the WAL and release
// the tenant directory lock.
func (r *Registry[T]) checkpointClose(srv T) (uint64, error) {
	srv.Close()
	if err := srv.Checkpoint(); err != nil {
		return 0, err
	}
	gen := srv.Generation()
	if err := srv.CloseDurability(); err != nil {
		return gen, err
	}
	return gen, nil
}

// Evict pages out the named tenant now, waiting for its in-flight
// requests to finish first. A cold or unknown tenant is a no-op.
func (r *Registry[T]) Evict(name string) error {
	r.mu.Lock()
	for {
		h := r.tenants[name]
		if h == nil || h.state == stateCold {
			r.mu.Unlock()
			return nil
		}
		if h.state == stateLoading || h.state == stateEvicting || h.inflight > 0 {
			h.cond.Wait()
			continue
		}
		h.state = stateEvicting
		r.resident--
		srv := h.srv
		r.mu.Unlock()
		gen, err := r.checkpointClose(srv)
		r.mu.Lock()
		if err != nil {
			h.state = stateResident
			r.resident++
			r.evictErrors.Add(1)
			h.cond.Broadcast()
			r.mu.Unlock()
			return err
		}
		var zero T
		h.srv = zero
		h.handler = nil
		h.state = stateCold
		r.known[name] = gen
		h.cond.Broadcast()
		r.mu.Unlock()
		r.evictions.Add(1)
		r.markDirty()
		return nil
	}
}

// SetDraining flips the registry's draining state: while draining,
// every tenant request answers 503 and /readyz fails.
func (r *Registry[T]) SetDraining(v bool) {
	r.mu.Lock()
	r.draining = v
	r.mu.Unlock()
}

// Draining reports whether the registry is draining.
func (r *Registry[T]) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Close drains the registry: new requests are rejected, every loaded
// tenant is checkpointed and closed once its in-flight requests finish
// ("drain = checkpoint-all"), the manifest gets a final synchronous
// save and the root lock is released. Safe to call more than once; the
// first error from a tenant checkpoint is returned.
func (r *Registry[T]) Close() error {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.draining = true
		for {
			var h *handle[T]
			for _, c := range r.tenants {
				if c.state != stateCold {
					h = c
					break
				}
			}
			if h == nil {
				break
			}
			if h.state == stateLoading || h.state == stateEvicting || h.inflight > 0 {
				h.cond.Wait()
				continue
			}
			h.state = stateEvicting
			r.resident--
			srv := h.srv
			r.mu.Unlock()
			gen, err := r.checkpointClose(srv)
			if err != nil && r.closeErr == nil {
				r.closeErr = fmt.Errorf("registry: drain %s: %w", h.name, err)
			}
			r.mu.Lock()
			var zero T
			h.srv = zero
			h.handler = nil
			h.state = stateCold
			if err == nil {
				r.known[h.name] = gen
			}
			h.cond.Broadcast()
		}
		r.mu.Unlock()
		close(r.stopFlush)
		<-r.flushDone
		if err := r.saveManifest(); err != nil && r.closeErr == nil {
			r.closeErr = err
		}
		if err := r.lock.Close(); err != nil && r.closeErr == nil {
			r.closeErr = err
		}
	})
	return r.closeErr
}

// markDirty schedules a coalesced manifest flush.
func (r *Registry[T]) markDirty() {
	select {
	case r.dirty <- struct{}{}:
	default:
	}
}

// flushLoop writes the manifest at most every few tens of
// milliseconds no matter how fast tenants churn — a tenant-creation
// storm must not pay one fsync'd atomic write per tenant. A crash
// before a pending flush is healed by adoptStrays at the next Open.
func (r *Registry[T]) flushLoop() {
	defer close(r.flushDone)
	for {
		select {
		case <-r.stopFlush:
			return
		case <-r.dirty:
			time.Sleep(50 * time.Millisecond)
			select { // coalesce anything that arrived during the sleep
			case <-r.dirty:
			default:
			}
			r.saveManifest() // best-effort; Close saves synchronously
		}
	}
}

// saveManifest snapshots the known-tenant map and writes it
// atomically.
func (r *Registry[T]) saveManifest() error {
	r.manifestMu.Lock()
	defer r.manifestMu.Unlock()
	r.mu.Lock()
	m := persist.RegistryManifest{Workload: r.backend.Workload}
	for name, gen := range r.known {
		m.Tenants = append(m.Tenants, persist.RegistryTenant{Name: name, Generation: gen})
	}
	r.mu.Unlock()
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Name < m.Tenants[j].Name })
	return persist.SaveRegistryManifest(r.opts.Dir, m)
}

// loadTenantConfig reads a tenant's persisted TENANT.json.
func loadTenantConfig(dir string) (TenantConfig, error) {
	raw, err := os.ReadFile(filepath.Join(dir, tenantConfigName))
	if err != nil {
		return TenantConfig{}, fmt.Errorf("registry: tenant config: %w", err)
	}
	var tc TenantConfig
	if err := json.Unmarshal(raw, &tc); err != nil {
		return TenantConfig{}, fmt.Errorf("registry: tenant config: %w", err)
	}
	return tc, nil
}

// saveTenantConfig writes a tenant's TENANT.json atomically.
func saveTenantConfig(dir string, tc TenantConfig) error {
	return persist.WriteFileAtomic(filepath.Join(dir, tenantConfigName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tc)
	})
}

// Tenants returns how many tenants the registry knows (resident or
// cold).
func (r *Registry[T]) Tenants() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.known)
}

// Resident returns how many tenants are currently loaded.
func (r *Registry[T]) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resident
}

// Stats is the registry-level /stats summary: population, paging
// counters and the resident working set. Per-tenant engine stats live
// at /t/{tenant}/stats.
type Stats struct {
	// Workload names the served workload.
	Workload string `json:"workload"`
	// Tenants is the total tenant population (resident + cold);
	// Resident of them are loaded, bounded by MaxResident.
	Tenants     int `json:"tenants"`
	Resident    int `json:"resident"`
	MaxResident int `json:"max_resident"`
	// ResidentBytes estimates the loaded models' memory;
	// MaxResidentBytes is the configured cap (0 = none).
	ResidentBytes    int64 `json:"resident_bytes"`
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// ResidentObservations sums the loaded tenants' observation counts.
	ResidentObservations int `json:"resident_observations"`
	// Creations, ColdLoads and Evictions are lifetime paging counters;
	// a cold load is any load from disk, including the first.
	Creations int64 `json:"creations"`
	ColdLoads int64 `json:"cold_loads"`
	Evictions int64 `json:"evictions"`
	// EvictErrors and LoadErrors count failed paging operations.
	EvictErrors int64 `json:"evict_errors"`
	LoadErrors  int64 `json:"load_errors"`
	// ColdLoadMeanMs and ColdLoadMaxMs summarize load latency — the
	// price a request pays to touch a cold tenant.
	ColdLoadMeanMs float64 `json:"cold_load_mean_ms"`
	ColdLoadMaxMs  float64 `json:"cold_load_max_ms"`
	// Draining reports the shutdown state.
	Draining bool `json:"draining"`
}

// Stats returns a point-in-time registry summary.
func (r *Registry[T]) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Workload:         r.backend.Workload,
		Tenants:          len(r.known),
		Resident:         r.resident,
		MaxResident:      r.opts.MaxResident,
		MaxResidentBytes: r.opts.MaxResidentBytes,
		Draining:         r.draining,
	}
	for _, h := range r.tenants {
		if h.state == stateResident {
			st.ResidentBytes += h.srv.ApproxBytes()
			st.ResidentObservations += h.srv.Len()
		}
	}
	r.mu.Unlock()
	st.Creations = r.creations.Load()
	st.ColdLoads = r.coldLoads.Load()
	st.Evictions = r.evictions.Load()
	st.EvictErrors = r.evictErrors.Load()
	st.LoadErrors = r.loadErrors.Load()
	if st.ColdLoads > 0 {
		st.ColdLoadMeanMs = float64(r.coldLoadNs.Load()) / float64(st.ColdLoads) / 1e6
	}
	st.ColdLoadMaxMs = float64(r.coldLoadMaxNs.Load()) / 1e6
	return st
}
