package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// This file is the registry's HTTP surface. Tenant-scoped routes
// (/t/{tenant}/classify, /t/{tenant}/insert, …) strip the tenant
// prefix and delegate to the tenant's own handler — the full
// single-tenant endpoint set, per tenant — after pinning the tenant
// resident for the request. The legacy single-tenant routes keep
// working as an alias for the default tenant (or the tenant named by
// an X-Tenant header), so existing clients and tools need no change.
//
// Lazy loading is synchronous: a request that touches a cold tenant
// blocks while the snapshot decodes — a clean eviction truncated the
// WAL, so the reload is a bounded disk fetch — then proceeds. 503 with
// Retry-After is reserved for draining and for load failures, where a
// retry after the disk heals genuinely can succeed.

// Handler returns the registry's HTTP mux.
func (r *Registry[T]) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /t/{tenant}", r.handlePut)
	mux.HandleFunc("GET /t/{tenant}", r.handleInfo)
	mux.HandleFunc("/t/{tenant}/{rest...}", r.handleTenant)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if r.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/", r.handleDefault)
	return mux
}

// handleTenant serves /t/{tenant}/{rest...}: resolve the tenant,
// rewrite the path to the tenant-relative remainder and delegate.
func (r *Registry[T]) handleTenant(w http.ResponseWriter, req *http.Request) {
	r.serveTenant(w, req, req.PathValue("tenant"), "/"+req.PathValue("rest"))
}

// handleDefault serves the legacy single-tenant routes against the
// default tenant, or the tenant named by the X-Tenant header.
func (r *Registry[T]) handleDefault(w http.ResponseWriter, req *http.Request) {
	name := req.Header.Get("X-Tenant")
	if name == "" {
		name = r.opts.DefaultTenant
	}
	r.serveTenant(w, req, name, req.URL.Path)
}

// serveTenant pins the tenant resident (creating it when the request
// is a create-on-first-write POST) and delegates the request, path
// rewritten to the tenant-relative form, to the tenant's handler.
func (r *Registry[T]) serveTenant(w http.ResponseWriter, req *http.Request, name, path string) {
	create := req.Method == http.MethodPost && r.backend.CreatePaths[path]
	h, _, err := r.acquire(name, create, nil)
	if err != nil {
		r.writeErr(w, err)
		return
	}
	defer r.release(h)
	if path != req.URL.Path {
		r2 := req.Clone(req.Context())
		r2.URL.Path = path
		r2.URL.RawPath = ""
		req = r2
	}
	h.handler.ServeHTTP(w, req)
}

// handlePut creates (or idempotently re-asserts) a tenant, with an
// optional TenantConfig JSON body fixing its shape; 201 on creation,
// 200 when it already existed.
func (r *Registry[T]) handlePut(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("tenant")
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var tc TenantConfig
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &tc); err != nil {
			http.Error(w, "tenant config: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	created, err := r.Create(name, tc)
	if err != nil {
		r.writeErr(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, map[string]any{"tenant": name, "created": created})
}

// handleInfo serves GET /t/{tenant}: paging state without loading the
// tenant — cold tenants stay cold under inspection.
func (r *Registry[T]) handleInfo(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("tenant")
	r.mu.Lock()
	gen, known := r.known[name]
	resident := false
	if h := r.tenants[name]; h != nil {
		resident = h.state == stateResident || h.state == stateLoading
	}
	r.mu.Unlock()
	if !known {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": name, "resident": resident, "generation": gen})
}

// handleStats serves the registry-level GET /stats.
func (r *Registry[T]) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}

// writeErr maps registry errors onto HTTP statuses: bad names 400,
// unknown tenants 404, draining and load failures 503 + Retry-After
// (retryable: the loader's disk may heal, the drain may be a failover).
func (r *Registry[T]) writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrInvalidName):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrUnknownTenant):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
