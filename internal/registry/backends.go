package registry

import (
	"fmt"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/server"
)

// This file binds the registry to the two engine workloads. Each
// backend's Open is the cold-load path: open the tenant's durable
// state (bootstrapping an empty model from its TenantConfig on first
// creation), replay recovery, and hand the registry a serving tenant.
// Recovery after a clean eviction is snapshot-decode-only — the
// eviction checkpoint truncated the WAL — which is what keeps cold
// loads a bounded-latency disk fetch.

// ClassifyBackend serves multi-class Bayes tree classification
// tenants (*server.Server). Tenants are created on their first POST
// /insert.
func ClassifyBackend() Backend[*server.Server] {
	return Backend[*server.Server]{
		Workload:    "classify",
		CreatePaths: map[string]bool{"/insert": true},
		Open: func(dir string, tc TenantConfig, carvedNPS float64, dopts server.DurabilityOptions) (*server.Server, error) {
			cfg := tc.ServerConfig(carvedNPS)
			s, err := server.OpenDurableServer(dopts, cfg, func() (*server.Server, error) {
				if tc.Dim <= 0 {
					return nil, fmt.Errorf("tenant dim unset (configure registry defaults or PUT the tenant)")
				}
				if len(tc.Labels) < 2 {
					return nil, fmt.Errorf("tenant needs at least two labels (configure registry defaults or PUT the tenant)")
				}
				return server.NewEmpty(tc.Shards, core.DefaultConfig(tc.Dim), tc.Labels, core.MultiOptions{}, cfg)
			})
			if err != nil {
				return nil, err
			}
			if err := s.Recover(); err != nil {
				s.CloseDurability()
				s.Close()
				return nil, err
			}
			return s, nil
		},
	}
}

// ClusterBackend serves anytime stream-clustering tenants
// (*server.ClusterServer) with the given clustering options. Tenants
// are created on their first POST /cluster.
func ClusterBackend(copts server.ClusterOptions) Backend[*server.ClusterServer] {
	return Backend[*server.ClusterServer]{
		Workload:    "cluster",
		CreatePaths: map[string]bool{"/cluster": true},
		Open: func(dir string, tc TenantConfig, carvedNPS float64, dopts server.DurabilityOptions) (*server.ClusterServer, error) {
			cfg := tc.ServerConfig(carvedNPS)
			s, err := server.OpenDurableCluster(dopts, cfg, copts, func() (*server.ClusterServer, error) {
				if tc.Dim <= 0 {
					return nil, fmt.Errorf("tenant dim unset (configure registry defaults or PUT the tenant)")
				}
				return server.NewCluster(clustree.DefaultConfig(tc.Dim), tc.Shards, cfg, copts)
			})
			if err != nil {
				return nil, err
			}
			if err := s.Recover(); err != nil {
				s.CloseDurability()
				s.Close()
				return nil, err
			}
			return s, nil
		},
	}
}
