package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"bayestree/internal/server"
)

// testDefaults is the tenant shape tests create on first write: the
// same 3-dim, 3-label space the loadgen workload uses.
func testDefaults() TenantConfig {
	return TenantConfig{Dim: 3, Labels: []int{0, 1, 2}}
}

func openTestRegistry(t *testing.T, dir string, mod func(*Options)) *Registry[*server.Server] {
	t.Helper()
	opts := Options{Dir: dir, Defaults: testDefaults()}
	if mod != nil {
		mod(&opts)
	}
	r, err := Open(opts, ClassifyBackend())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// testPoint is a deterministic labeled observation: three clusters on
// a line, matching the label set of testDefaults.
func testPoint(rng *rand.Rand) ([]float64, int) {
	label := rng.Intn(3)
	c := float64(label) * 4
	return []float64{c + rng.NormFloat64(), c + rng.NormFloat64(), c + rng.NormFloat64()}, label
}

func mustPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func TestCreateOnFirstWriteAndRouting(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// First write creates the tenant.
	code, body := mustPost(t, ts.URL+"/t/alpha/insert", `{"x":[0,0,0],"label":0}`)
	if code != http.StatusOK {
		t.Fatalf("create-on-first-write insert: %d %s", code, body)
	}
	if got := r.Tenants(); got != 1 {
		t.Fatalf("tenants after first write: %d", got)
	}
	code, body = mustPost(t, ts.URL+"/t/alpha/classify", `{"x":[0,0,0]}`)
	if code != http.StatusOK {
		t.Fatalf("classify on created tenant: %d %s", code, body)
	}

	// Reads do not create: unknown tenant is 404.
	code, _ = mustPost(t, ts.URL+"/t/ghost/classify", `{"x":[0,0,0]}`)
	if code != http.StatusNotFound {
		t.Fatalf("classify on unknown tenant: %d, want 404", code)
	}
	// Invalid names are 400.
	code, _ = mustPost(t, ts.URL+"/t/bad*name/insert", `{"x":[0,0,0],"label":0}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid tenant name: %d, want 400", code)
	}

	// PUT creates explicitly (201), re-PUT is idempotent (200).
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/t/beta", strings.NewReader(`{"shards":2}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT new tenant: %d, want 201", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/t/beta", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT existing tenant: %d, want 200", resp.StatusCode)
	}

	// Tenant info and registry stats.
	resp, err = http.Get(ts.URL + "/t/beta")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Tenant   string `json:"tenant"`
		Resident bool   `json:"resident"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Tenant != "beta" || !info.Resident {
		t.Fatalf("tenant info: %+v", info)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Workload != "classify" || st.Tenants != 2 || st.Resident != 2 {
		t.Fatalf("registry stats: %+v", st)
	}
	// Per-tenant stats delegate to the tenant's own endpoint.
	resp, err = http.Get(ts.URL + "/t/alpha/stats")
	if err != nil {
		t.Fatal(err)
	}
	var tst server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&tst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tst.Observations != 1 {
		t.Fatalf("tenant stats observations: %+v", tst)
	}
}

// TestLegacyDefaultAlias pins the compatibility contract: the
// single-tenant routes keep working, aliased onto the default tenant,
// and X-Tenant reroutes them without touching the path.
func TestLegacyDefaultAlias(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	code, body := mustPost(t, ts.URL+"/insert", `{"x":[1,1,1],"label":1}`)
	if code != http.StatusOK {
		t.Fatalf("legacy insert: %d %s", code, body)
	}
	code, body = mustPost(t, ts.URL+"/classify", `{"x":[1,1,1]}`)
	if code != http.StatusOK {
		t.Fatalf("legacy classify: %d %s", code, body)
	}
	if got := r.Tenants(); got != 1 {
		t.Fatalf("tenants after legacy writes: %d", got)
	}

	// X-Tenant reroutes the legacy path to a named tenant.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/insert", strings.NewReader(`{"x":[1,1,1],"label":1}`))
	req.Header.Set("X-Tenant", "sensor-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-Tenant insert: %d", resp.StatusCode)
	}
	if got := r.Tenants(); got != 2 {
		t.Fatalf("tenants after X-Tenant write: %d", got)
	}
}

// TestEvictReloadDigitIdentical is the paging-safety property from the
// issue: an evicted-then-reloaded tenant must answer digit-identically
// to a never-evicted twin fed the same observations. Snapshot bytes
// are compared, which subsumes every query answer.
func TestEvictReloadDigitIdentical(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), nil)

	rng := rand.New(rand.NewSource(42))
	type obs struct {
		x     []float64
		label int
	}
	feed := make([]obs, 400)
	for i := range feed {
		x, label := testPoint(rng)
		feed[i] = obs{x, label}
	}
	for _, name := range []string{"evicted", "twin"} {
		err := r.With(name, true, func(s *server.Server) error {
			for _, o := range feed {
				if err := s.Insert(o.x, o.label); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := r.Evict("evicted"); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Evictions; got != 1 {
		t.Fatalf("evictions: %d", got)
	}

	snap := func(name string) []byte {
		var buf bytes.Buffer
		if err := r.With(name, false, func(s *server.Server) error {
			return s.WriteSnapshot(&buf)
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got, want := snap("evicted"), snap("twin")
	if !bytes.Equal(got, want) {
		t.Fatalf("evicted-then-reloaded tenant diverged from its twin: %d vs %d snapshot bytes", len(got), len(want))
	}
	if r.Stats().ColdLoads < 3 {
		t.Fatalf("cold loads: %+v", r.Stats())
	}

	// And the reloaded tenant answers queries identically.
	var a, b server.Result
	if err := r.With("evicted", false, func(s *server.Server) error {
		var err error
		a, err = s.Classify(feed[0].x, 64)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.With("twin", false, func(s *server.Server) error {
		var err error
		b, err = s.Classify(feed[0].x, 64)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("classify diverged: %+v vs %+v", a, b)
	}
}

// TestLRUPagingCap drives more tenants than the resident cap allows
// and checks the registry pages the cold tail out, reloading on touch.
func TestLRUPagingCap(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), func(o *Options) { o.MaxResident = 2 })

	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("tn%02d", i)
		if err := r.With(name, true, func(s *server.Server) error {
			return s.Insert([]float64{float64(i), 0, 0}, i%3)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Resident(); got > 2 {
		t.Fatalf("resident %d exceeds cap 2", got)
	}
	if got := r.Tenants(); got != 5 {
		t.Fatalf("tenants: %d", got)
	}
	st := r.Stats()
	if st.Evictions < 3 {
		t.Fatalf("expected >=3 evictions, got %+v", st)
	}

	// Touching an evicted tenant reloads it with its data intact.
	loadsBefore := st.ColdLoads
	if err := r.With("tn00", false, func(s *server.Server) error {
		if s.Len() != 1 {
			return fmt.Errorf("reloaded tenant has %d observations", s.Len())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().ColdLoads; got != loadsBefore+1 {
		t.Fatalf("cold loads: %d -> %d", loadsBefore, got)
	}
}

// TestRestartRecoversPopulation closes a populated registry and
// reopens the root: the manifest (plus directory adoption) must
// restore the full tenant population without loading any model, and a
// touched tenant must come back with its data.
func TestRestartRecoversPopulation(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir, nil)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("tn%02d", i)
		if err := r.With(name, true, func(s *server.Server) error {
			return s.Insert([]float64{float64(i), 0, 0}, i%3)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir, nil)
	if got := r2.Tenants(); got != 4 {
		t.Fatalf("tenants after restart: %d", got)
	}
	if got := r2.Resident(); got != 0 {
		t.Fatalf("restart loaded %d models eagerly", got)
	}
	if err := r2.With("tn02", false, func(s *server.Server) error {
		if s.Len() != 1 {
			return fmt.Errorf("recovered tenant has %d observations", s.Len())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadMismatchRefused: a root written by one workload refuses
// to open under the other backend.
func TestWorkloadMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir, nil)
	if err := r.With("a", true, func(s *server.Server) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}, ClusterBackend(server.ClusterOptions{SnapshotEvery: -1})); err == nil {
		t.Fatal("cluster backend opened a classify root")
	}
}

// TestSecondWriterRefused: the root flock makes a second registry on
// the same directory fail fast.
func TestSecondWriterRefused(t *testing.T) {
	dir := t.TempDir()
	openTestRegistry(t, dir, nil)
	if _, err := Open(Options{Dir: dir, Defaults: testDefaults()}, ClassifyBackend()); err == nil {
		t.Fatal("second registry on one root did not fail")
	}
}

func TestValidTenantName(t *testing.T) {
	for _, ok := range []string{"a", "sensor-7", "user_42", "A.b-C_9", strings.Repeat("x", 64)} {
		if !ValidTenantName(ok) {
			t.Errorf("ValidTenantName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a b", "a*b", strings.Repeat("x", 65)} {
		if ValidTenantName(bad) {
			t.Errorf("ValidTenantName(%q) = true", bad)
		}
	}
}

// TestDrainingRejects: a draining registry answers 503 and fails
// readiness; /healthz stays alive.
func TestDrainingRejects(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	r.SetDraining(true)
	code, _ := mustPost(t, ts.URL+"/t/a/insert", `{"x":[0,0,0],"label":0}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining insert: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz: %d", resp.StatusCode)
	}
	r.SetDraining(false)
	code, _ = mustPost(t, ts.URL+"/t/a/insert", `{"x":[0,0,0],"label":0}`)
	if code != http.StatusOK {
		t.Fatalf("insert after undrain: %d", code)
	}
}
