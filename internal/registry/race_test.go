package registry

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bayestree/internal/server"
)

// TestConcurrentEvictionVsRequests is the eviction-safety property
// test from the issue, meant to run under -race: requests hammer a
// small tenant population while evictions are forced concurrently —
// both by an explicit evictor goroutine and by a resident cap smaller
// than the population. A request racing its tenant's eviction must
// either win the LRU touch (pinning the tenant resident) or block on
// the reload; it must never observe a half-closed engine. The proof of
// that is zero lost writes: every acknowledged insert must be present
// when the dust settles, which only holds if eviction checkpoints see
// a quiesced engine and reloads recover everything.
func TestConcurrentEvictionVsRequests(t *testing.T) {
	r := openTestRegistry(t, t.TempDir(), func(o *Options) { o.MaxResident = 2 })

	const tenants = 5
	names := make([]string, tenants)
	var acked [tenants]atomic.Int64
	for i := range names {
		names[i] = fmt.Sprintf("rt%02d", i)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := 8
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(tenants)
				insert := rng.Intn(2) == 0
				err := r.With(names[i], true, func(s *server.Server) error {
					if insert {
						x, label := testPoint(rng)
						if err := s.Insert(x, label); err != nil {
							return err
						}
						acked[i].Add(1)
						return nil
					}
					if s.Len() == 0 {
						return nil
					}
					_, err := s.Classify([]float64{0, 0, 0}, 32)
					return err
				})
				if err != nil {
					errs <- fmt.Errorf("tenant %s: %w", names[i], err)
					return
				}
			}
		}(int64(w + 1))
	}

	// The evictor forces pageouts beyond what the cap already causes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Evict(names[rng.Intn(tenants)]); err != nil {
				errs <- fmt.Errorf("evict: %w", err)
				return
			}
		}
	}()

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Zero lost writes: every acknowledged insert survived the churn.
	for i, name := range names {
		want := int(acked[i].Load())
		err := r.With(name, false, func(s *server.Server) error {
			if got := s.Len(); got != want {
				return fmt.Errorf("%s: %d observations, %d acked inserts", name, got, want)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions happened; test exercised nothing: %+v", st)
	}
	t.Logf("churn: %d evictions, %d cold loads, mean cold load %.2fms",
		st.Evictions, st.ColdLoads, st.ColdLoadMeanMs)
}
