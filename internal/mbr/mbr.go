// Package mbr implements minimum bounding rectangles and the rectangle
// algebra used by R-tree-family indexes: area, margin, overlap, enlargement,
// union and the MINDIST lower bound used by geometric descent priorities.
// The Bayes tree stores an MBR in every entry (Definition 1) and the
// standalone R*-tree substrate is built entirely on this package.
package mbr

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned d-dimensional rectangle with inclusive bounds
// Lo[i] ≤ Hi[i] per dimension.
type Rect struct {
	Lo []float64
	Hi []float64
}

// New returns a rectangle copying the given bounds. It returns an error if
// the dimensions disagree or any lower bound exceeds its upper bound.
func New(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("mbr: lo dim %d != hi dim %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("mbr: lo[%d]=%v > hi[%d]=%v", i, lo[i], i, hi[i])
		}
	}
	r := Rect{Lo: make([]float64, len(lo)), Hi: make([]float64, len(hi))}
	copy(r.Lo, lo)
	copy(r.Hi, hi)
	return r, nil
}

// Point returns the degenerate rectangle covering exactly the point x.
func Point(x []float64) Rect {
	r := Rect{Lo: make([]float64, len(x)), Hi: make([]float64, len(x))}
	copy(r.Lo, x)
	copy(r.Hi, x)
	return r
}

// Empty returns a canonical "empty" rectangle of dimension d whose bounds
// are inverted infinities; unioning anything into it yields that thing.
func Empty(d int) Rect {
	r := Rect{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := 0; i < d; i++ {
		r.Lo[i] = math.Inf(1)
		r.Hi[i] = math.Inf(-1)
	}
	return r
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// IsEmpty reports whether r is the canonical empty rectangle (or otherwise
// inverted in any dimension).
func (r Rect) IsEmpty() bool {
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	out := Rect{Lo: make([]float64, len(r.Lo)), Hi: make([]float64, len(r.Hi))}
	copy(out.Lo, r.Lo)
	copy(out.Hi, r.Hi)
	return out
}

// Extend grows r in place to cover other and returns r.
func (r *Rect) Extend(other Rect) {
	for i := range r.Lo {
		if other.Lo[i] < r.Lo[i] {
			r.Lo[i] = other.Lo[i]
		}
		if other.Hi[i] > r.Hi[i] {
			r.Hi[i] = other.Hi[i]
		}
	}
}

// ExtendPoint grows r in place to cover the point x.
func (r *Rect) ExtendPoint(x []float64) {
	for i := range r.Lo {
		if x[i] < r.Lo[i] {
			r.Lo[i] = x[i]
		}
		if x[i] > r.Hi[i] {
			r.Hi[i] = x[i]
		}
	}
}

// Union returns the smallest rectangle covering both a and b.
func Union(a, b Rect) Rect {
	out := a.Clone()
	out.Extend(b)
	return out
}

// UnionAll returns the smallest rectangle covering all given rectangles,
// or the empty rectangle of dimension d if none are given.
func UnionAll(rects []Rect, d int) Rect {
	out := Empty(d)
	for _, r := range rects {
		out.Extend(r)
	}
	return out
}

// Area returns the d-dimensional volume of r (0 for degenerate or empty
// rectangles).
func (r Rect) Area() float64 {
	if len(r.Lo) == 0 {
		return 0
	}
	a := 1.0
	for i := range r.Lo {
		side := r.Hi[i] - r.Lo[i]
		if side < 0 {
			return 0
		}
		a *= side
	}
	return a
}

// Margin returns the sum of the side lengths of r (the "margin" minimised
// by the R* split axis choice; proportional to the surface for d=2).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		side := r.Hi[i] - r.Lo[i]
		if side > 0 {
			m += side
		}
	}
	return m
}

// Center returns the midpoint of r.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Contains reports whether r fully contains other.
func (r Rect) Contains(other Rect) bool {
	for i := range r.Lo {
		if other.Lo[i] < r.Lo[i] || other.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point x lies inside r (inclusive).
func (r Rect) ContainsPoint(x []float64) bool {
	for i := range r.Lo {
		if x[i] < r.Lo[i] || x[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and other overlap (inclusive boundaries).
func (r Rect) Intersects(other Rect) bool {
	for i := range r.Lo {
		if other.Hi[i] < r.Lo[i] || other.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection of a and b.
func OverlapArea(a, b Rect) float64 {
	v := 1.0
	for i := range a.Lo {
		lo := math.Max(a.Lo[i], b.Lo[i])
		hi := math.Min(a.Hi[i], b.Hi[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enlargement returns the increase in area of r needed to cover other.
func Enlargement(r, other Rect) float64 {
	return Union(r, other).Area() - r.Area()
}

// MinDist2 returns the squared minimum distance from the point x to the
// rectangle (0 if x is inside) — the MINDIST bound of Roussopoulos et al.
// used by the paper's geometric descent priority.
func (r Rect) MinDist2(x []float64) float64 {
	var s float64
	for i := range r.Lo {
		switch {
		case x[i] < r.Lo[i]:
			d := r.Lo[i] - x[i]
			s += d * d
		case x[i] > r.Hi[i]:
			d := x[i] - r.Hi[i]
			s += d * d
		}
	}
	return s
}

// MinDist returns the minimum distance from x to r.
func (r Rect) MinDist(x []float64) float64 { return math.Sqrt(r.MinDist2(x)) }

// MinDist2Obs returns the squared MINDIST restricted to the observed
// dimensions obs (nil = all) — used by geometric descent priorities for
// queries with missing values.
func (r Rect) MinDist2Obs(x []float64, obs []int) float64 {
	if obs == nil {
		return r.MinDist2(x)
	}
	var s float64
	for _, i := range obs {
		switch {
		case x[i] < r.Lo[i]:
			d := r.Lo[i] - x[i]
			s += d * d
		case x[i] > r.Hi[i]:
			d := x[i] - r.Hi[i]
			s += d * d
		}
	}
	return s
}

// Validate checks that bounds are finite and ordered, returning a
// descriptive error otherwise. Empty rectangles are reported as errors —
// they should never appear inside a built tree.
func (r Rect) Validate() error {
	if len(r.Lo) != len(r.Hi) {
		return fmt.Errorf("mbr: dims lo=%d hi=%d differ", len(r.Lo), len(r.Hi))
	}
	for i := range r.Lo {
		if math.IsNaN(r.Lo[i]) || math.IsNaN(r.Hi[i]) ||
			math.IsInf(r.Lo[i], 0) || math.IsInf(r.Hi[i], 0) {
			return fmt.Errorf("mbr: non-finite bound in dim %d", i)
		}
		if r.Lo[i] > r.Hi[i] {
			return fmt.Errorf("mbr: inverted bounds in dim %d: [%v,%v]", i, r.Lo[i], r.Hi[i])
		}
	}
	return nil
}

// String renders r compactly for diagnostics.
func (r Rect) String() string {
	s := "{"
	for i := range r.Lo {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("[%.3f,%.3f]", r.Lo[i], r.Hi[i])
	}
	return s + "}"
}
