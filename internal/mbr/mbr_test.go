package mbr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rect(t *testing.T, lo, hi []float64) Rect {
	t.Helper()
	r, err := New(lo, hi)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{0}, []float64{1, 2}); err == nil {
		t.Errorf("dim mismatch accepted")
	}
	if _, err := New([]float64{2}, []float64{1}); err == nil {
		t.Errorf("inverted bounds accepted")
	}
}

func TestPointAndContains(t *testing.T) {
	p := Point([]float64{1, 2})
	if !p.ContainsPoint([]float64{1, 2}) {
		t.Errorf("point rect should contain its point")
	}
	if p.Area() != 0 {
		t.Errorf("point rect area = %v", p.Area())
	}
	r := rect(t, []float64{0, 0}, []float64{2, 3})
	if !r.Contains(p) {
		t.Errorf("containment failed")
	}
	if r.Contains(rect(t, []float64{1, 1}, []float64{3, 3})) {
		t.Errorf("partial overlap reported as containment")
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := rect(t, []float64{0, 0}, []float64{2, 3})
	if r.Area() != 6 {
		t.Errorf("area = %v", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("margin = %v", r.Margin())
	}
	c := r.Center()
	if c[0] != 1 || c[1] != 1.5 {
		t.Errorf("center = %v", c)
	}
}

func TestEmptyRect(t *testing.T) {
	e := Empty(2)
	if !e.IsEmpty() {
		t.Errorf("Empty not empty")
	}
	e.ExtendPoint([]float64{1, 1})
	if e.IsEmpty() {
		t.Errorf("extended rect still empty")
	}
	if e.Lo[0] != 1 || e.Hi[0] != 1 {
		t.Errorf("extend from empty wrong: %v", e)
	}
}

func TestUnionCoversInputsProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		ra := normRect(a[:2], a[2:])
		rb := normRect(b[:2], b[2:])
		u := Union(ra, rb)
		return u.Contains(ra) && u.Contains(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionAreaMonotoneProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		ra := normRect(a[:2], a[2:])
		rb := normRect(b[:2], b[2:])
		u := Union(ra, rb)
		return u.Area() >= ra.Area()-1e-9 && u.Area() >= rb.Area()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapArea(t *testing.T) {
	a := rect(t, []float64{0, 0}, []float64{2, 2})
	b := rect(t, []float64{1, 1}, []float64{3, 3})
	if got := OverlapArea(a, b); got != 1 {
		t.Errorf("overlap = %v, want 1", got)
	}
	c := rect(t, []float64{5, 5}, []float64{6, 6})
	if got := OverlapArea(a, c); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	// Overlap is symmetric and bounded by each area.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := randomRect(rng, 3)
		y := randomRect(rng, 3)
		oxy, oyx := OverlapArea(x, y), OverlapArea(y, x)
		if math.Abs(oxy-oyx) > 1e-9 {
			t.Fatalf("overlap asymmetric")
		}
		if oxy > x.Area()+1e-9 || oxy > y.Area()+1e-9 {
			t.Fatalf("overlap exceeds area")
		}
	}
}

func TestIntersects(t *testing.T) {
	a := rect(t, []float64{0}, []float64{1})
	b := rect(t, []float64{1}, []float64{2}) // touching counts
	if !a.Intersects(b) {
		t.Errorf("touching rects should intersect")
	}
	c := rect(t, []float64{1.1}, []float64{2})
	if a.Intersects(c) {
		t.Errorf("disjoint rects intersect")
	}
}

func TestEnlargement(t *testing.T) {
	a := rect(t, []float64{0, 0}, []float64{1, 1})
	b := rect(t, []float64{0, 0}, []float64{2, 1})
	if got := Enlargement(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("enlargement = %v, want 1", got)
	}
	if got := Enlargement(b, a); got != 0 {
		t.Errorf("enlargement of contained rect = %v, want 0", got)
	}
}

func TestMinDist(t *testing.T) {
	r := rect(t, []float64{0, 0}, []float64{1, 1})
	if got := r.MinDist2([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("inside point dist = %v", got)
	}
	if got := r.MinDist([]float64{4, 5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("corner dist = %v, want 5", got)
	}
	if got := r.MinDist([]float64{0.5, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("edge dist = %v, want 2", got)
	}
}

// Property: MINDIST lower-bounds the distance to any contained point.
func TestMinDistLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		r := randomRect(rng, 2)
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		// Random point inside r.
		p := []float64{
			r.Lo[0] + rng.Float64()*(r.Hi[0]-r.Lo[0]),
			r.Lo[1] + rng.Float64()*(r.Hi[1]-r.Lo[1]),
		}
		dp := math.Hypot(p[0]-q[0], p[1]-q[1])
		if r.MinDist(q) > dp+1e-9 {
			t.Fatalf("MINDIST %v exceeds point distance %v", r.MinDist(q), dp)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := rect(t, []float64{0}, []float64{1}).Validate(); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	bad := Rect{Lo: []float64{1}, Hi: []float64{0}}
	if err := bad.Validate(); err == nil {
		t.Errorf("inverted rect accepted")
	}
	bad = Rect{Lo: []float64{math.NaN()}, Hi: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Errorf("NaN rect accepted")
	}
	if err := Empty(1).Validate(); err == nil {
		t.Errorf("empty rect should not validate")
	}
}

func TestUnionAll(t *testing.T) {
	rs := []Rect{
		Point([]float64{0, 0}),
		Point([]float64{2, 1}),
		Point([]float64{1, 3}),
	}
	u := UnionAll(rs, 2)
	if u.Lo[0] != 0 || u.Hi[0] != 2 || u.Lo[1] != 0 || u.Hi[1] != 3 {
		t.Errorf("UnionAll = %v", u)
	}
	if !UnionAll(nil, 2).IsEmpty() {
		t.Errorf("UnionAll of nothing should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rect(t, []float64{0}, []float64{1})
	c := r.Clone()
	c.Lo[0] = -5
	if r.Lo[0] != 0 {
		t.Errorf("Clone aliases storage")
	}
}

func TestString(t *testing.T) {
	s := rect(t, []float64{0}, []float64{1}).String()
	if s == "" {
		t.Errorf("empty String()")
	}
}

func normRect(lo, hi []float64) Rect {
	l := make([]float64, len(lo))
	h := make([]float64, len(lo))
	for i := range lo {
		a, b := lo[i], hi[i]
		if math.IsNaN(a) || math.IsInf(a, 0) {
			a = 0
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			b = 1
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		if a > b {
			a, b = b, a
		}
		l[i], h[i] = a, b
	}
	return Rect{Lo: l, Hi: h}
}

func randomRect(rng *rand.Rand, d int) Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		a, b := rng.NormFloat64()*2, rng.NormFloat64()*2
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}
