package clustree

import (
	"fmt"

	"bayestree/internal/stats"
)

// DumpNode is the serialization-friendly view of one tree node: the
// structural source of truth (entry cluster features, parked buffers,
// decay timestamps, topology) with nothing derived, so a persistence
// layer can store it bit-exactly and Rebuild an identical tree.
type DumpNode struct {
	// Leaf reports whether the node's entries are micro-clusters.
	Leaf bool
	// Entries are the node's entries in tree order.
	Entries []DumpEntry
}

// DumpEntry is the serialization-friendly view of one entry.
type DumpEntry struct {
	// CF is the entry's (decayed) cluster feature — the micro-cluster at
	// leaf level, the subtree summary above it.
	CF stats.CF
	// Buffer is the parked-insertion buffer CF.
	Buffer stats.CF
	// TS is the timestamp the CFs were last decayed to.
	TS float64
	// Child is the subtree below the entry; nil at leaf level.
	Child *DumpNode
}

// Dump exports the tree's structural state. The returned nodes share no
// memory with the tree (CFs are cloned), so the caller may hold them
// across further inserts — this is what makes consistent snapshots
// under a serving layer's shard lock cheap to take.
func (t *Tree) Dump() *DumpNode {
	return dumpNode(t.root)
}

func dumpNode(n *node) *DumpNode {
	out := &DumpNode{Leaf: n.leaf, Entries: make([]DumpEntry, len(n.entries))}
	for i, e := range n.entries {
		out.Entries[i] = DumpEntry{CF: e.cf.Clone(), Buffer: e.buffer.Clone(), TS: e.ts}
		if e.child != nil {
			out.Entries[i].Child = dumpNode(e.child)
		}
	}
	return out
}

// Counters returns the lifetime statistics Dump does not carry in the
// topology: total inserts, parked insertions, micro-cluster merges and
// leaf splits.
func (t *Tree) Counters() (inserts, parked, merges, splits int) {
	return t.inserts, t.parked, t.merges, t.splits
}

// Rebuild reconstructs a tree from a Dump, its current time and its
// lifetime counters. The dump is validated structurally (dimensions,
// leaf/inner consistency) and the rebuilt tree is digit-identical to
// the dumped one: every CF float64 is taken as stored, so MicroClusters
// and Weight reproduce the original bit for bit.
func Rebuild(cfg Config, root *DumpNode, now float64, inserts, parked, merges, splits int) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("clustree: rebuild with nil root")
	}
	if inserts < 0 || parked < 0 || merges < 0 || splits < 0 {
		return nil, fmt.Errorf("clustree: rebuild with negative counters")
	}
	rn, err := rebuildNode(root, cfg.Dim)
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, root: rn, now: now,
		inserts: inserts, parked: parked, merges: merges, splits: splits}, nil
}

func rebuildNode(d *DumpNode, dim int) (*node, error) {
	n := &node{leaf: d.Leaf}
	for i := range d.Entries {
		de := &d.Entries[i]
		if de.CF.Dim() != dim || de.Buffer.Dim() != dim {
			return nil, fmt.Errorf("clustree: rebuild entry dim %d/%d != %d", de.CF.Dim(), de.Buffer.Dim(), dim)
		}
		if err := de.CF.Validate(); err != nil {
			return nil, fmt.Errorf("clustree: rebuild: %w", err)
		}
		if err := de.Buffer.Validate(); err != nil {
			return nil, fmt.Errorf("clustree: rebuild: %w", err)
		}
		e := &entry{cf: de.CF.Clone(), buffer: de.Buffer.Clone(), ts: de.TS}
		if d.Leaf != (de.Child == nil) {
			return nil, fmt.Errorf("clustree: rebuild leaf/inner mismatch")
		}
		if de.Child != nil {
			child, err := rebuildNode(de.Child, dim)
			if err != nil {
				return nil, err
			}
			if len(child.entries) == 0 {
				return nil, fmt.Errorf("clustree: rebuild with empty inner child")
			}
			e.child = child
		}
		n.entries = append(n.entries, e)
	}
	return n, nil
}
