// Package clustree implements the anytime-clustering extension sketched in
// Section 4.2 of the paper (the design that later became ClusTree): a
// balanced index of cluster features maintained under anytime constraints
// on a data stream.
//
// The key mechanisms, all named in the paper:
//
//   - exponential decay — entry weights fade as 2^(−λ·Δt), keeping an
//     up-to-date view of the evolving distribution in constant space;
//   - CF additivity — entries aggregate, subtract and compare snapshots
//     from arbitrary points in time;
//   - parked insertions — when the stream leaves no time to reach a leaf,
//     the object is aggregated into a buffer CF at the entry where the
//     descent was interrupted ("park insertion objects in inner nodes");
//   - hitchhikers — a later descent through that entry takes the buffered
//     mass along, so parked objects eventually reach leaf level;
//   - self-adaptation — under sustained pressure objects park higher up
//     and no splits occur, so the tree size adapts to the stream speed.
//
// Leaf entries are micro-clusters; MicroClusters exposes them and
// MacroCluster groups them density-based (as in [5]) for the final
// clustering.
package clustree

import (
	"fmt"
	"math"

	"bayestree/internal/stats"
)

// Config parameterises the clustering tree.
type Config struct {
	// Dim is the observation dimensionality.
	Dim int
	// MaxFanout (M) and MinFanout (m) bound inner-node entry counts.
	MaxFanout, MinFanout int
	// MaxLeafEntries bounds the micro-clusters per leaf.
	MaxLeafEntries int
	// Lambda is the decay rate: a weight halves every 1/Lambda time units.
	// Zero disables decay.
	Lambda float64
	// MergeThreshold is the distance (relative to micro-cluster radius)
	// under which an arriving object is absorbed into an existing
	// micro-cluster instead of creating a new one (default 3).
	MergeThreshold float64
	// AbsorbDistance is an absolute absorption distance: objects within
	// it of a micro-cluster mean always merge, preventing tight sources
	// from fragmenting into swarms of near-zero-radius micro-clusters
	// (default 0.03, suited to unit-cube data).
	AbsorbDistance float64
}

// DefaultConfig mirrors the Bayes tree's emulated page fanout.
func DefaultConfig(dim int) Config {
	return Config{
		Dim:            dim,
		MaxFanout:      4,
		MinFanout:      2,
		MaxLeafEntries: 8,
		Lambda:         0.01,
		MergeThreshold: 3,
		AbsorbDistance: 0.03,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("clustree: Dim must be ≥ 1, got %d", c.Dim)
	}
	if c.MaxFanout < 2 {
		return fmt.Errorf("clustree: MaxFanout must be ≥ 2, got %d", c.MaxFanout)
	}
	if c.MinFanout < 1 || c.MinFanout > c.MaxFanout/2 {
		return fmt.Errorf("clustree: MinFanout must be in [1, MaxFanout/2], got %d", c.MinFanout)
	}
	if c.MaxLeafEntries < 2 {
		return fmt.Errorf("clustree: MaxLeafEntries must be ≥ 2, got %d", c.MaxLeafEntries)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("clustree: Lambda must be ≥ 0, got %v", c.Lambda)
	}
	if c.MergeThreshold < 0 {
		return fmt.Errorf("clustree: MergeThreshold must be ≥ 0, got %v", c.MergeThreshold)
	}
	if c.AbsorbDistance < 0 {
		return fmt.Errorf("clustree: AbsorbDistance must be ≥ 0, got %v", c.AbsorbDistance)
	}
	return nil
}

// entry is a tree entry: the decayed cluster feature of its subtree (or
// micro-cluster, at leaf level), the buffer of parked objects and the
// timestamp of the last decay application.
type entry struct {
	cf     stats.CF
	buffer stats.CF
	child  *node // nil at leaf level
	ts     float64
}

type node struct {
	leaf    bool
	entries []*entry
}

// Tree is the anytime clustering index. It is not safe for concurrent use.
type Tree struct {
	cfg     Config
	root    *node
	now     float64
	inserts int
	parked  int
	merges  int
	splits  int
}

// New creates an empty clustering tree.
func New(cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, root: &node{leaf: true}}, nil
}

// Now returns the tree's current time (the largest insertion timestamp).
func (t *Tree) Now() float64 { return t.now }

// Inserts returns the number of objects inserted.
func (t *Tree) Inserts() int { return t.inserts }

// Parked returns how many insertions ended in a buffer instead of a leaf.
func (t *Tree) Parked() int { return t.parked }

// Splits returns how many leaf splits occurred.
func (t *Tree) Splits() int { return t.splits }

// Merges returns how many arriving objects (or overflow entries) were
// absorbed into an existing micro-cluster instead of opening a new one.
func (t *Tree) Merges() int { return t.merges }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// SetLambda changes the decay rate for all future decay applications.
// Mass already faded keeps its current value; only fading from now on
// uses the new rate. This is how a serving layer overrides the decay of
// a warm-started tree.
func (t *Tree) SetLambda(lambda float64) error {
	if lambda < 0 {
		return fmt.Errorf("clustree: Lambda must be ≥ 0, got %v", lambda)
	}
	t.cfg.Lambda = lambda
	return nil
}

// CountNodes returns the number of tree nodes (inner and leaf), the
// memory-bound observable of a decaying clustering tree.
func (t *Tree) CountNodes() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		total := 1
		if !n.leaf {
			for _, e := range n.entries {
				total += walk(e.child)
			}
		}
		return total
	}
	return walk(t.root)
}

// decay brings an entry's CFs forward to time ts.
func (t *Tree) decay(e *entry, ts float64) {
	if t.cfg.Lambda == 0 || ts <= e.ts {
		e.ts = math.Max(e.ts, ts)
		return
	}
	w := math.Exp2(-t.cfg.Lambda * (ts - e.ts))
	e.cf.Scale(w)
	e.buffer.Scale(w)
	e.ts = ts
}

// Insert adds an object observed at timestamp ts with a budget of node
// visits. A budget that runs out parks the object (plus any hitchhikers
// collected on the way) in the deepest reached entry's buffer; a budget
// < 0 means unlimited. Timestamps must be non-decreasing.
func (t *Tree) Insert(x []float64, ts float64, budget int) error {
	_, err := t.InsertCounted(x, ts, budget)
	return err
}

// InsertCounted is Insert reporting the node visits actually spent —
// the anytime work accounting a serving layer's admission controller
// settles against its grants. Every node examined counts: the inner
// nodes stepped through, the node whose entry the object parked in,
// and the leaf it merged into — so reaching the terminal node can cost
// one visit more than the budget that bounded the descent.
func (t *Tree) InsertCounted(x []float64, ts float64, budget int) (visited int, err error) {
	if len(x) != t.cfg.Dim {
		return 0, fmt.Errorf("clustree: point dim %d != %d", len(x), t.cfg.Dim)
	}
	if ts < t.now {
		return 0, fmt.Errorf("clustree: timestamp %v precedes current time %v", ts, t.now)
	}
	t.now = ts
	t.inserts++

	hitchhiker := stats.CFOf(x)
	n := t.root
	var path []*node
	for !n.leaf {
		path = append(path, n)
		if budget == 0 {
			// Out of time: park the object in the closest entry's buffer
			// (finding that entry reads this node, hence the +1).
			e := t.closestEntry(n, x, ts)
			e.buffer.Merge(hitchhiker)
			t.parked++
			return visited + 1, nil
		}
		e := t.closestEntry(n, x, ts)
		// The insertion mass (object + hitchhikers) joins the subtree
		// summary on the way down.
		e.cf.Merge(hitchhiker)
		// Take parked mass along (the hitchhiker mechanism): it travels
		// with us toward leaf level. The mass moves from "at this entry"
		// into the subtree below it, so it joins e.cf now.
		if e.buffer.N > 0 {
			e.cf.Merge(e.buffer)
			hitchhiker.Merge(e.buffer)
			e.buffer = stats.NewCF(t.cfg.Dim)
		}
		n = e.child
		visited++
		if budget > 0 {
			budget--
		}
	}
	// Leaf level: absorb into the closest micro-cluster or open a new one.
	t.insertLeaf(n, path, hitchhiker, x, ts, budget)
	visited++
	return visited, nil
}

// closestEntry decays the node's entries to ts and returns the entry whose
// mean is nearest to x (empty entries lose).
func (t *Tree) closestEntry(n *node, x []float64, ts float64) *entry {
	var best *entry
	bestD := math.Inf(1)
	for _, e := range n.entries {
		t.decay(e, ts)
		if e.cf.N <= 0 && e.buffer.N <= 0 {
			continue
		}
		d := sqDist(e.cf.Mean(), x)
		if d < bestD {
			best, bestD = e, d
		}
	}
	if best == nil {
		best = n.entries[0]
	}
	return best
}

// insertLeaf merges the arriving mass into a micro-cluster or creates one.
func (t *Tree) insertLeaf(n *node, path []*node, mass stats.CF, x []float64, ts float64, budget int) {
	var best *entry
	bestD := math.Inf(1)
	for _, e := range n.entries {
		t.decay(e, ts)
		if e.cf.N <= 0 {
			continue
		}
		d := math.Sqrt(sqDist(e.cf.Mean(), x))
		if d < bestD {
			best, bestD = e, d
		}
	}
	if best != nil {
		absorb := t.cfg.MergeThreshold * best.cf.Radius()
		if absorb < t.cfg.AbsorbDistance {
			absorb = t.cfg.AbsorbDistance
		}
		if bestD <= absorb || (len(n.entries) >= t.cfg.MaxLeafEntries && budget == 0) {
			best.cf.Merge(mass)
			t.merges++
			return
		}
	}
	n.entries = append(n.entries, &entry{cf: mass, buffer: stats.NewCF(t.cfg.Dim), ts: ts})
	if len(n.entries) > t.cfg.MaxLeafEntries {
		if budget == 0 {
			// No time to split: merge the two closest micro-clusters —
			// the self-adaptation that keeps the tree size matched to the
			// stream speed.
			t.mergeClosest(n)
			return
		}
		t.splitLeafUp(n, path, ts)
	}
}

// mergeClosest merges the two closest entries of a leaf.
func (t *Tree) mergeClosest(n *node) {
	bi, bj, bd := -1, -1, math.Inf(1)
	for i := 0; i < len(n.entries); i++ {
		for j := i + 1; j < len(n.entries); j++ {
			d := sqDist(n.entries[i].cf.Mean(), n.entries[j].cf.Mean())
			if d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	if bi < 0 {
		return
	}
	n.entries[bi].cf.Merge(n.entries[bj].cf)
	n.entries[bi].buffer.Merge(n.entries[bj].buffer)
	n.entries = append(n.entries[:bj], n.entries[bj+1:]...)
	t.merges++
}

// splitLeafUp splits an overflowing node and propagates upward, growing
// the root if needed (balanced growth as in R-trees).
func (t *Tree) splitLeafUp(n *node, path []*node, ts float64) {
	t.splits++
	left, right := t.splitNode(n)
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		// Replace the entry pointing at n with entries for the halves.
		idx := -1
		for j, e := range parent.entries {
			if e.child == n {
				idx = j
				break
			}
		}
		le, re := t.summarizeEntry(left, ts), t.summarizeEntry(right, ts)
		if idx >= 0 {
			// Preserve the parked buffer of the replaced entry.
			le.buffer.Merge(parent.entries[idx].buffer)
			parent.entries[idx] = le
			parent.entries = append(parent.entries, re)
		}
		if len(parent.entries) <= t.cfg.MaxFanout {
			return
		}
		n = parent
		left, right = t.splitNode(parent)
	}
	// Root split.
	newRoot := &node{entries: []*entry{
		t.summarizeEntry(left, ts),
		t.summarizeEntry(right, ts),
	}}
	t.root = newRoot
}

// summarizeEntry builds a parent entry over a node: children are decayed
// to the common timestamp ts, then their CFs and parked buffers are
// summed (buffers below an entry count toward its subtree weight).
func (t *Tree) summarizeEntry(n *node, ts float64) *entry {
	e := &entry{cf: stats.NewCF(t.cfg.Dim), buffer: stats.NewCF(t.cfg.Dim), child: n, ts: ts}
	for _, c := range n.entries {
		t.decay(c, ts)
		e.cf.Merge(c.cf)
		e.cf.Merge(c.buffer)
	}
	return e
}

// splitNode splits by the dimension of largest extent of entry means
// (fast single-pass heuristic; clustering quality is dominated by decay
// and merge behaviour, not the split rule).
func (t *Tree) splitNode(n *node) (left, right *node) {
	dim := t.cfg.Dim
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for k := 0; k < dim; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	means := make([][]float64, len(n.entries))
	for i, e := range n.entries {
		m := e.cf.Mean()
		means[i] = m
		for k, v := range m {
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	axis, best := 0, -1.0
	for k := 0; k < dim; k++ {
		if ext := hi[k] - lo[k]; ext > best {
			axis, best = k, ext
		}
	}
	mid := (lo[axis] + hi[axis]) / 2
	l := &node{leaf: n.leaf}
	r := &node{leaf: n.leaf}
	for i, e := range n.entries {
		if means[i][axis] <= mid {
			l.entries = append(l.entries, e)
		} else {
			r.entries = append(r.entries, e)
		}
	}
	// Guarantee non-empty halves.
	if len(l.entries) == 0 {
		l.entries = append(l.entries, r.entries[len(r.entries)-1])
		r.entries = r.entries[:len(r.entries)-1]
	}
	if len(r.entries) == 0 {
		r.entries = append(r.entries, l.entries[len(l.entries)-1])
		l.entries = l.entries[:len(l.entries)-1]
	}
	return l, r
}

// MicroCluster is a leaf-level cluster feature at a common timestamp.
type MicroCluster struct {
	CF     stats.CF
	Weight float64
	Mean   []float64
	Radius float64
}

// MicroClusters returns all micro-clusters (including parked buffer mass,
// which is folded into its entry) decayed to the tree's current time,
// dropping those whose weight fell below minWeight.
func (t *Tree) MicroClusters(minWeight float64) []MicroCluster {
	var out []MicroCluster
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			t.decay(e, t.now)
			if n.leaf {
				cf := e.cf.Clone()
				cf.Merge(e.buffer)
				if cf.N < minWeight {
					continue
				}
				out = append(out, MicroCluster{CF: cf, Weight: cf.N, Mean: cf.Mean(), Radius: cf.Radius()})
				continue
			}
			walk(e.child)
		}
	}
	walk(t.root)
	return out
}

// MicroClusterCount returns how many micro-clusters MicroClusters
// would report at the given floor, without materialising them — the
// allocation-free form a stats endpoint polls.
func (t *Tree) MicroClusterCount(minWeight float64) int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			t.decay(e, t.now)
			if n.leaf {
				if e.cf.N+e.buffer.N >= minWeight {
					count++
				}
				continue
			}
			walk(e.child)
		}
	}
	walk(t.root)
	return count
}

// Weight returns the total (decayed) weight stored in the tree, parked
// mass included. With λ > 0 this is less than Inserts().
func (t *Tree) Weight() float64 {
	var total float64
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			t.decay(e, t.now)
			total += e.buffer.N
			if n.leaf {
				total += e.cf.N
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return total
}

// Validate checks the decayed-CF consistency invariant: each inner entry's
// CF weight is at least the sum of its subtree's leaf and buffer weights
// below it (decay makes exact equality hold only at a common timestamp, so
// the check decays everything to now first and allows small tolerance).
func (t *Tree) Validate() error {
	var walk func(n *node) (float64, error)
	walk = func(n *node) (float64, error) {
		var total float64
		for _, e := range n.entries {
			t.decay(e, t.now)
			if n.leaf {
				total += e.cf.N + e.buffer.N
				continue
			}
			below, err := walk(e.child)
			if err != nil {
				return 0, err
			}
			below += e.buffer.N
			if e.cf.N+e.buffer.N+1e-6 < below {
				return 0, fmt.Errorf("clustree: entry weight %v below subtree weight %v", e.cf.N+e.buffer.N, below)
			}
			total += below
		}
		return total, nil
	}
	_, err := walk(t.root)
	return err
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
