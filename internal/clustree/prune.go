package clustree

import (
	"bayestree/internal/stats"
)

// Prune is the maintenance sweep of a decaying clustering tree: every
// entry is decayed to the tree's current time, micro-clusters whose
// faded weight fell below minWeight are forgotten, subtrees that emptied
// out are removed, and a root that degenerated to a single-entry chain
// is collapsed — bounding a long-running tree's memory the same way the
// classifier's DecaySweep bounds its trees. It returns how many
// micro-clusters and how many whole subtree entries were removed.
//
// Mass accounting: a removed micro-cluster's weight is below the floor
// by definition, so the tree's Weight drops by at most (removals ×
// minWeight). Parked buffer mass at an entry whose subtree emptied is
// preserved when it is still above the floor: it is reborn as a leaf
// micro-cluster in place of the vanished subtree.
func (t *Tree) Prune(minWeight float64) (points, subtrees int) {
	if minWeight <= 0 {
		return 0, 0
	}
	t.pruneNode(t.root, minWeight, &points, &subtrees)
	// Root-chain collapse: a root holding a single entry adds a level of
	// descent for nothing — promote the child and re-park the entry's
	// buffer into the promoted level.
	for !t.root.leaf && len(t.root.entries) == 1 {
		e := t.root.entries[0]
		t.root = e.child
		if e.buffer.N > 0 && len(t.root.entries) > 0 {
			t.root.entries[0].buffer.Merge(e.buffer)
		}
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return points, subtrees
}

// pruneNode prunes one node's entries in place, recursing first so a
// subtree that empties out is seen by its parent in the same sweep.
func (t *Tree) pruneNode(n *node, floor float64, points, subtrees *int) {
	kept := n.entries[:0]
	for _, e := range n.entries {
		t.decay(e, t.now)
		if n.leaf {
			if e.cf.N+e.buffer.N < floor {
				*points++
				continue
			}
			kept = append(kept, e)
			continue
		}
		t.pruneNode(e.child, floor, points, subtrees)
		if len(e.child.entries) == 0 {
			// The subtree below is gone. Parked mass still above the
			// floor survives as a fresh micro-cluster in its place;
			// anything lighter is forgotten with the subtree.
			if e.buffer.N >= floor {
				mc := &entry{cf: e.buffer, buffer: stats.NewCF(t.cfg.Dim), ts: e.ts}
				e.child = &node{leaf: true, entries: []*entry{mc}}
				e.cf = mc.cf.Clone()
				e.buffer = stats.NewCF(t.cfg.Dim)
				kept = append(kept, e)
				continue
			}
			*subtrees++
			continue
		}
		kept = append(kept, e)
	}
	// Release the pruned tail so removed entries can be collected.
	for i := len(kept); i < len(n.entries); i++ {
		n.entries[i] = nil
	}
	n.entries = kept
}

// Depth returns the number of levels in the tree (1 for a single leaf).
// Budget-starved streams keep it small — the self-adaptation observable
// a serving layer's stats report.
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; {
		d++
		var next *node
		for _, e := range n.entries {
			if e.child != nil {
				next = e.child
				break
			}
		}
		if next == nil {
			break
		}
		n = next
	}
	return d
}
