package clustree

import (
	"fmt"
	"math"
	"sort"
)

// SnapshotStore implements the pyramidal time frame of Aggarwal et al.
// [1], which Section 4.2 proposes for the clustering extension:
// micro-cluster snapshots are kept at timestamps of exponentially growing
// granularity (order i holds times divisible by α^i), with a bounded
// number per order, so that for any past time t a snapshot within a
// bounded relative distance of t is retained while total memory stays
// O(α · log_α(now) · capacity). Combined with CF additivity, two
// snapshots give the clustering of the data that arrived between them.
type SnapshotStore struct {
	alpha    int
	capacity int
	orders   map[int][]Snapshot
}

// Snapshot is the micro-cluster state of a tree at one timestamp.
type Snapshot struct {
	Time          float64
	MicroClusters []MicroCluster
}

// NewSnapshotStore creates a pyramidal store with base alpha ≥ 2 and the
// given per-order capacity (the classical choice is alpha+1).
func NewSnapshotStore(alpha, capacity int) (*SnapshotStore, error) {
	if alpha < 2 {
		return nil, fmt.Errorf("clustree: snapshot alpha must be ≥ 2, got %d", alpha)
	}
	if capacity < 2 {
		return nil, fmt.Errorf("clustree: snapshot capacity must be ≥ 2, got %d", capacity)
	}
	return &SnapshotStore{alpha: alpha, capacity: capacity, orders: make(map[int][]Snapshot)}, nil
}

// order returns the highest i with t divisible by alpha^i (t must be a
// positive integer timestamp).
func (s *SnapshotStore) order(t int64) int {
	i := 0
	a := int64(s.alpha)
	for t%a == 0 {
		t /= a
		i++
	}
	return i
}

// Record stores a snapshot taken at integer timestamp t (snapshots at
// non-integer times are attributed to ⌊t⌋; a zero or negative timestamp
// is rejected). Older snapshots of the same order are evicted beyond the
// capacity.
func (s *SnapshotStore) Record(t float64, mcs []MicroCluster) error {
	it := int64(math.Floor(t))
	if it <= 0 {
		return fmt.Errorf("clustree: snapshot timestamp must be ≥ 1, got %v", t)
	}
	o := s.order(it)
	snaps := s.orders[o]
	// Replace an existing snapshot at the same time.
	for i := range snaps {
		if int64(snaps[i].Time) == it {
			snaps[i] = Snapshot{Time: float64(it), MicroClusters: mcs}
			return nil
		}
	}
	snaps = append(snaps, Snapshot{Time: float64(it), MicroClusters: mcs})
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].Time < snaps[b].Time })
	if len(snaps) > s.capacity {
		snaps = snaps[len(snaps)-s.capacity:]
	}
	s.orders[o] = snaps
	return nil
}

// Alpha returns the pyramidal base.
func (s *SnapshotStore) Alpha() int { return s.alpha }

// Capacity returns the per-order snapshot capacity.
func (s *SnapshotStore) Capacity() int { return s.capacity }

// All returns every retained snapshot sorted by time — the persistence
// view of the store. Re-Recording them in this order into an empty
// store with the same alpha and capacity reproduces the store exactly
// (no order can exceed its capacity, so no eviction fires), which is
// how snapshots of the store itself round-trip.
func (s *SnapshotStore) All() []Snapshot {
	out := make([]Snapshot, 0, s.Len())
	for _, snaps := range s.orders {
		out = append(out, snaps...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// Len returns the total number of retained snapshots.
func (s *SnapshotStore) Len() int {
	total := 0
	for _, snaps := range s.orders {
		total += len(snaps)
	}
	return total
}

// Closest returns the retained snapshot whose time is nearest to t, and
// false if the store is empty.
func (s *SnapshotStore) Closest(t float64) (Snapshot, bool) {
	var best Snapshot
	bestD := math.Inf(1)
	found := false
	for _, snaps := range s.orders {
		for _, sn := range snaps {
			if d := math.Abs(sn.Time - t); d < bestD {
				best, bestD, found = sn, d, true
			}
		}
	}
	return best, found
}

// Window returns the difference between the micro-cluster populations of
// the snapshots closest to t1 and t2 (t1 < t2): for each micro-cluster of
// the later snapshot, the CF of the nearest earlier micro-cluster (within
// matchRadius of its mean) is subtracted — the CF subtractivity trick of
// [1] and Section 4.2 that recovers the clustering of the data arriving
// in (t1, t2]. Unmatched later clusters are returned whole; results with
// non-positive weight are dropped.
func (s *SnapshotStore) Window(t1, t2 float64, matchRadius float64) ([]MicroCluster, error) {
	if t2 <= t1 {
		return nil, fmt.Errorf("clustree: window (%v, %v] is empty", t1, t2)
	}
	a, okA := s.Closest(t1)
	b, okB := s.Closest(t2)
	if !okA || !okB {
		return nil, fmt.Errorf("clustree: no snapshots retained")
	}
	if a.Time >= b.Time {
		return b.MicroClusters, nil
	}
	used := make([]bool, len(a.MicroClusters))
	var out []MicroCluster
	for _, late := range b.MicroClusters {
		cf := late.CF.Clone()
		// Find the nearest unused early micro-cluster.
		best, bestD := -1, math.Inf(1)
		for i, early := range a.MicroClusters {
			if used[i] {
				continue
			}
			if d := sqDist(early.Mean, late.Mean); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 && bestD <= matchRadius*matchRadius {
			used[best] = true
			cf.Subtract(a.MicroClusters[best].CF)
		}
		if cf.N > 1e-9 {
			out = append(out, MicroCluster{CF: cf, Weight: cf.N, Mean: cf.Mean(), Radius: cf.Radius()})
		}
	}
	return out, nil
}

// The store never needs more than O(alpha·capacity·log_alpha(T))
// snapshots; MaxRetained bounds it for a horizon T, exposed for tests and
// capacity planning.
func MaxRetained(alpha, capacity int, horizon float64) int {
	if horizon < float64(alpha) {
		return capacity
	}
	orders := int(math.Log(horizon)/math.Log(float64(alpha))) + 1
	return orders * capacity
}
