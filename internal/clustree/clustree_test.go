package clustree

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(3).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Dim: 0, MaxFanout: 4, MinFanout: 2, MaxLeafEntries: 4},
		{Dim: 2, MaxFanout: 1, MinFanout: 1, MaxLeafEntries: 4},
		{Dim: 2, MaxFanout: 4, MinFanout: 3, MaxLeafEntries: 4},
		{Dim: 2, MaxFanout: 4, MinFanout: 2, MaxLeafEntries: 1},
		{Dim: 2, MaxFanout: 4, MinFanout: 2, MaxLeafEntries: 4, Lambda: -1},
		{Dim: 2, MaxFanout: 4, MinFanout: 2, MaxLeafEntries: 4, MergeThreshold: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	tree, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]float64{1}, 0, -1); err == nil {
		t.Errorf("wrong dim accepted")
	}
	if err := tree.Insert([]float64{0.5, 0.5}, 5, -1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]float64{0.5, 0.5}, 4, -1); err == nil {
		t.Errorf("time going backwards accepted")
	}
}

// Without decay, the total weight in the tree equals the insert count —
// mass conservation through merges, splits, parking and hitchhiking.
func TestWeightConservationNoDecay(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		budget := -1
		switch i % 5 {
		case 0:
			budget = 0 // park at the root's entries
		case 1:
			budget = 1
		}
		if err := tree.Insert(x, float64(i), budget); err != nil {
			t.Fatal(err)
		}
	}
	if got := tree.Weight(); math.Abs(got-3000) > 1e-6 {
		t.Fatalf("total weight %v, want 3000", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tree.Parked() == 0 {
		t.Errorf("expected some parked insertions")
	}
}

// Decay: inserting one point and waiting 1/λ time units must halve its
// weight.
func TestDecayHalvesWeight(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Lambda = 0.1
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]float64{0.5}, 0, -1); err != nil {
		t.Fatal(err)
	}
	// Advance time by inserting a far-away point at t = 10 = 1/λ.
	if err := tree.Insert([]float64{0.9}, 10, -1); err != nil {
		t.Fatal(err)
	}
	mcs := tree.MicroClusters(0)
	var w05 float64
	for _, m := range mcs {
		if math.Abs(m.Mean[0]-0.5) < 0.05 {
			w05 = m.Weight
		}
	}
	if math.Abs(w05-0.5) > 1e-9 {
		t.Errorf("decayed weight %v, want 0.5", w05)
	}
}

// Parked mass must eventually reach leaf level via hitchhiking.
func TestHitchhikerDelivery(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Grow a multi-level tree first.
	ts := 0.0
	for i := 0; i < 500; i++ {
		ts++
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}, ts, -1); err != nil {
			t.Fatal(err)
		}
	}
	// Park a batch near one corner with zero budget.
	for i := 0; i < 50; i++ {
		ts++
		if err := tree.Insert([]float64{0.05 + 0.01*rng.Float64(), 0.05}, ts, 0); err != nil {
			t.Fatal(err)
		}
	}
	parkedBefore := bufferMass(tree)
	if parkedBefore == 0 {
		t.Fatalf("nothing parked")
	}
	// Full-budget inserts into the same region pick the mass up.
	for i := 0; i < 200; i++ {
		ts++
		if err := tree.Insert([]float64{0.05 + 0.01*rng.Float64(), 0.05}, ts, -1); err != nil {
			t.Fatal(err)
		}
	}
	parkedAfter := bufferMass(tree)
	if parkedAfter >= parkedBefore {
		t.Errorf("hitchhiking did not drain buffers: %v → %v", parkedBefore, parkedAfter)
	}
	// Mass conservation still holds.
	if got := tree.Weight(); math.Abs(got-750) > 1e-6 {
		t.Errorf("total weight %v, want 750", got)
	}
}

func bufferMass(t *Tree) float64 {
	var total float64
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			total += e.buffer.N
			if !n.leaf {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return total
}

// Self-adaptation: under pure zero-budget pressure after warm-up, no
// further splits occur (objects park instead).
func TestSelfAdaptationNoSplitsUnderPressure(t *testing.T) {
	cfg := DefaultConfig(2)
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ts := 0.0
	for i := 0; i < 300; i++ {
		ts++
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}, ts, -1); err != nil {
			t.Fatal(err)
		}
	}
	splitsBefore := tree.Splits()
	for i := 0; i < 300; i++ {
		ts++
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}, ts, 0); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Splits() != splitsBefore {
		t.Errorf("splits occurred under zero budget: %d → %d", splitsBefore, tree.Splits())
	}
}

// Three well-separated sources must yield three macro clusters.
func TestMacroClustersRecoverSources(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0.001
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	centers := [][]float64{{0.15, 0.15}, {0.85, 0.15}, {0.5, 0.85}}
	for i := 0; i < 6000; i++ {
		c := centers[rng.Intn(3)]
		x := []float64{
			clamp01(c[0] + rng.NormFloat64()*0.04),
			clamp01(c[1] + rng.NormFloat64()*0.04),
		}
		if err := tree.Insert(x, float64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	mcs := tree.MicroClusters(1)
	macros, _ := MacroClusters(mcs, MacroOptions{Eps: 0.15, MinWeight: 3})
	if len(macros) != 3 {
		t.Fatalf("found %d macro clusters, want 3", len(macros))
	}
	// Each recovered cluster sits near one source.
	for _, m := range macros {
		best := math.Inf(1)
		for _, c := range centers {
			best = math.Min(best, math.Hypot(m.Mean[0]-c[0], m.Mean[1]-c[1]))
		}
		if best > 0.1 {
			t.Errorf("macro cluster at %v far from all sources", m.Mean)
		}
	}
}

func TestMacroClustersEdgeCases(t *testing.T) {
	if m, n := MacroClusters(nil, MacroOptions{}); m != nil || n != nil {
		t.Errorf("empty input should yield nothing")
	}
	// All-light micro-clusters become noise.
	mcs := []MicroCluster{
		{Weight: 0.1, Mean: []float64{0, 0}},
		{Weight: 0.1, Mean: []float64{1, 1}},
	}
	macros, noise := MacroClusters(mcs, MacroOptions{Eps: 0.5, MinWeight: 5})
	if len(macros) != 0 || len(noise) != 2 {
		t.Errorf("light clusters: %d macros, %d noise", len(macros), len(noise))
	}
}

// Evolving stream: after the source moves and decay forgets, the macro
// clustering must follow the new location (the paper's "up-to-date view").
func TestDriftTracking(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0.01
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Phase 1: source at (0.2, 0.2).
	ts := 0.0
	for i := 0; i < 2000; i++ {
		ts++
		x := []float64{clamp01(0.2 + rng.NormFloat64()*0.03), clamp01(0.2 + rng.NormFloat64()*0.03)}
		if err := tree.Insert(x, ts, -1); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: source jumps to (0.8, 0.8) and enough time passes for the
	// old mass to fade.
	for i := 0; i < 2000; i++ {
		ts++
		x := []float64{clamp01(0.8 + rng.NormFloat64()*0.03), clamp01(0.8 + rng.NormFloat64()*0.03)}
		if err := tree.Insert(x, ts, -1); err != nil {
			t.Fatal(err)
		}
	}
	mcs := tree.MicroClusters(1)
	macros, _ := MacroClusters(mcs, MacroOptions{Eps: 0.2, MinWeight: 3})
	if len(macros) == 0 {
		t.Fatal("no macro clusters")
	}
	// The heaviest cluster must be at the new location.
	heaviest := macros[0]
	for _, m := range macros[1:] {
		if m.Weight > heaviest.Weight {
			heaviest = m
		}
	}
	if math.Hypot(heaviest.Mean[0]-0.8, heaviest.Mean[1]-0.8) > 0.1 {
		t.Errorf("heaviest cluster at %v, want near (0.8, 0.8)", heaviest.Mean)
	}
}

func TestMicroClusterFiltering(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Lambda = 0
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tree.Insert([]float64{0.5}, float64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	all := tree.MicroClusters(0)
	heavy := tree.MicroClusters(1000)
	if len(all) == 0 {
		t.Fatalf("no micro-clusters")
	}
	if len(heavy) != 0 {
		t.Errorf("weight filter ignored")
	}
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
