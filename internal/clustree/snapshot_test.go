package clustree

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/stats"
)

func mcAt(mean []float64, weight float64) MicroCluster {
	cf := stats.NewCF(len(mean))
	for i := 0; i < int(weight); i++ {
		cf.Add(mean)
	}
	return MicroCluster{CF: cf, Weight: cf.N, Mean: cf.Mean(), Radius: cf.Radius()}
}

func TestSnapshotStoreValidation(t *testing.T) {
	if _, err := NewSnapshotStore(1, 3); err == nil {
		t.Errorf("alpha=1 accepted")
	}
	if _, err := NewSnapshotStore(2, 1); err == nil {
		t.Errorf("capacity=1 accepted")
	}
	s, err := NewSnapshotStore(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(0, nil); err == nil {
		t.Errorf("t=0 accepted")
	}
	if err := s.Record(-3, nil); err == nil {
		t.Errorf("negative time accepted")
	}
}

// The pyramidal property: memory stays logarithmic in the horizon while
// recent times are retained densely.
func TestSnapshotStorePyramidal(t *testing.T) {
	s, err := NewSnapshotStore(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4096
	for ts := 1; ts <= horizon; ts++ {
		if err := s.Record(float64(ts), []MicroCluster{mcAt([]float64{float64(ts)}, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() > MaxRetained(2, 3, horizon) {
		t.Fatalf("retained %d snapshots, cap %d", s.Len(), MaxRetained(2, 3, horizon))
	}
	// The most recent timestamps survive exactly.
	for _, want := range []float64{4096, 4095, 4094} {
		got, ok := s.Closest(want)
		if !ok || got.Time != want {
			t.Errorf("recent snapshot %v lost (got %v)", want, got.Time)
		}
	}
	// The pyramidal guarantee is relative to age: for a query about time
	// q, the retained snapshot's age (horizon − s) differs from the
	// query's age (horizon − q) by at most a constant factor.
	for _, q := range []float64{100, 500, 1000, 3000} {
		got, ok := s.Closest(q)
		if !ok {
			t.Fatalf("no snapshot near %v", q)
		}
		ageQ := horizon - q
		ageS := horizon - got.Time
		if math.Abs(ageS-ageQ) > math.Max(2, 0.8*ageQ) {
			t.Errorf("snapshot age %v too far from query age %v", ageS, ageQ)
		}
	}
}

func TestSnapshotClosestEmpty(t *testing.T) {
	s, _ := NewSnapshotStore(2, 3)
	if _, ok := s.Closest(10); ok {
		t.Errorf("empty store returned a snapshot")
	}
}

func TestSnapshotRecordReplacesSameTime(t *testing.T) {
	s, _ := NewSnapshotStore(2, 4)
	if err := s.Record(6, []MicroCluster{mcAt([]float64{1}, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(6, []MicroCluster{mcAt([]float64{2}, 5)}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Closest(6)
	if len(got.MicroClusters) != 1 || got.MicroClusters[0].Weight != 5 {
		t.Errorf("replacement failed: %+v", got)
	}
	if s.Len() != 1 {
		t.Errorf("duplicate snapshot retained")
	}
}

// Window subtraction: the micro-clusters of (t1, t2] are the later ones
// minus the matched earlier ones (CF subtractivity).
func TestSnapshotWindow(t *testing.T) {
	s, _ := NewSnapshotStore(2, 8)
	// At t=8: cluster A with weight 10.
	a8 := mcAt([]float64{0.2}, 10)
	if err := s.Record(8, []MicroCluster{a8}); err != nil {
		t.Fatal(err)
	}
	// At t=16: cluster A grew to 25, new cluster B with weight 7.
	a16 := mcAt([]float64{0.2}, 25)
	b16 := mcAt([]float64{0.9}, 7)
	if err := s.Record(16, []MicroCluster{a16, b16}); err != nil {
		t.Fatal(err)
	}
	window, err := s.Window(8, 16, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(window) != 2 {
		t.Fatalf("window has %d clusters, want 2", len(window))
	}
	var wA, wB float64
	for _, m := range window {
		if math.Abs(m.Mean[0]-0.2) < 0.05 {
			wA = m.Weight
		}
		if math.Abs(m.Mean[0]-0.9) < 0.05 {
			wB = m.Weight
		}
	}
	if math.Abs(wA-15) > 1e-9 {
		t.Errorf("windowed weight of A = %v, want 15", wA)
	}
	if math.Abs(wB-7) > 1e-9 {
		t.Errorf("windowed weight of B = %v, want 7", wB)
	}
	if _, err := s.Window(16, 8, 0.1); err == nil {
		t.Errorf("inverted window accepted")
	}
}

// End-to-end: record snapshots while a stream drifts; the window between
// two times reflects only the data of that window.
func TestSnapshotWindowOnLiveTree(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Lambda = 0 // no decay so window arithmetic is exact
	tree, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewSnapshotStore(2, 6)
	rng := rand.New(rand.NewSource(1))
	ts := 0.0
	record := func() {
		if err := store.Record(ts, tree.MicroClusters(0)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: source at 0.2 for 512 steps.
	for i := 0; i < 512; i++ {
		ts++
		if err := tree.Insert([]float64{clamp01(0.2 + rng.NormFloat64()*0.02)}, ts, -1); err != nil {
			t.Fatal(err)
		}
		record()
	}
	mid := ts
	// Phase 2: source at 0.8 for 512 more.
	for i := 0; i < 512; i++ {
		ts++
		if err := tree.Insert([]float64{clamp01(0.8 + rng.NormFloat64()*0.02)}, ts, -1); err != nil {
			t.Fatal(err)
		}
		record()
	}
	window, err := store.Window(mid, ts, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var w02, w08 float64
	for _, m := range window {
		if m.Mean[0] < 0.5 {
			w02 += m.Weight
		} else {
			w08 += m.Weight
		}
	}
	if w08 < 400 {
		t.Errorf("window misses phase-2 mass: %v", w08)
	}
	if w02 > 120 {
		t.Errorf("window leaks phase-1 mass: %v", w02)
	}
}
