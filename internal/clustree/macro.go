package clustree

import (
	"math"
	"sort"
)

// MacroOptions parameterise the density-based offline clustering over
// micro-clusters (Section 4.2 proposes "density based clustering in an
// offline component as in [5]" to find clusters of arbitrary shape).
type MacroOptions struct {
	// Eps connects two micro-clusters whose means are within Eps.
	Eps float64
	// MinWeight is the minimum decayed weight for a micro-cluster to act
	// as a core (lighter ones can only join as border members).
	MinWeight float64
}

// MacroCluster is a connected group of micro-clusters.
type MacroCluster struct {
	Members []int // indices into the MicroClusters slice
	Weight  float64
	Mean    []float64
}

// MacroClusters groups micro-clusters density-based: cores (weight ≥
// MinWeight) within Eps of each other are connected; non-core
// micro-clusters join the nearest core within Eps; the rest are noise
// (returned as the second value).
func MacroClusters(mcs []MicroCluster, opts MacroOptions) ([]MacroCluster, []int) {
	n := len(mcs)
	if n == 0 {
		return nil, nil
	}
	core := make([]bool, n)
	for i, m := range mcs {
		core[i] = m.Weight >= opts.MinWeight
	}
	// Union-find over cores.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(i int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	eps2 := opts.Eps * opts.Eps
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !core[j] {
				continue
			}
			if sqDist(mcs[i].Mean, mcs[j].Mean) <= eps2 {
				union(i, j)
			}
		}
	}
	// Borders attach to their nearest core within eps.
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	for i := 0; i < n; i++ {
		if core[i] {
			assigned[i] = find(i)
			continue
		}
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !core[j] {
				continue
			}
			if d := sqDist(mcs[i].Mean, mcs[j].Mean); d <= eps2 && d < bestD {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			assigned[i] = find(best)
		}
	}
	groups := make(map[int][]int)
	var noise []int
	for i, a := range assigned {
		if a == -1 {
			noise = append(noise, i)
			continue
		}
		groups[a] = append(groups[a], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]MacroCluster, 0, len(groups))
	for _, r := range roots {
		members := groups[r]
		mc := MacroCluster{Members: members}
		dim := len(mcs[members[0]].Mean)
		mc.Mean = make([]float64, dim)
		for _, i := range members {
			mc.Weight += mcs[i].Weight
			for k := 0; k < dim; k++ {
				mc.Mean[k] += mcs[i].Weight * mcs[i].Mean[k]
			}
		}
		if mc.Weight > 0 {
			for k := range mc.Mean {
				mc.Mean[k] /= mc.Weight
			}
		}
		out = append(out, mc)
	}
	return out, noise
}
