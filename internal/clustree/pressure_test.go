package clustree

import (
	"math"
	"math/rand"
	"testing"
)

// TestValidateUnderPressure is the property test for the anytime
// insertion machinery: random budget-starved streams — parked objects,
// hitchhikers, forced merges, splits, decay — must keep the decayed-CF
// consistency invariant at every checkpoint, and the total weight must
// be conserved modulo decay: with λ = 0 the tree holds exactly one unit
// of mass per insert wherever each object ended up (leaf, buffer, or
// merged); with λ > 0 it holds exactly the analytically decayed sum
// Σ 2^(−λ·(now−tᵢ)).
func TestValidateUnderPressure(t *testing.T) {
	for _, tc := range []struct {
		name   string
		lambda float64
	}{
		{"no decay", 0},
		{"decay", 0.004},
		{"fast decay", 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				cfg := DefaultConfig(3)
				cfg.Lambda = tc.lambda
				tree, err := New(cfg)
				if err != nil {
					t.Fatalf("new: %v", err)
				}
				rng := rand.New(rand.NewSource(seed))
				expected := 0.0 // analytically decayed total mass
				prevTS := 0.0
				const n = 3000
				for i := 0; i < n; i++ {
					// Drifting sources keep splits and merges coming.
					src := float64(i % 4)
					drift := float64(i) / n * 0.4
					x := []float64{
						src/4 + drift + 0.05*rng.NormFloat64(),
						1 - src/4 + 0.05*rng.NormFloat64(),
						drift + 0.05*rng.NormFloat64(),
					}
					// Budgets from starved (0: park at the first inner
					// node) to unlimited, biased toward starvation.
					budget := [...]int{0, 0, 1, 1, 2, -1}[rng.Intn(6)]
					ts := float64(i + 1)
					if err := tree.Insert(x, ts, budget); err != nil {
						t.Fatalf("seed %d insert %d: %v", seed, i, err)
					}
					expected = expected*math.Exp2(-tc.lambda*(ts-prevTS)) + 1
					prevTS = ts
					if i%500 == 499 {
						if err := tree.Validate(); err != nil {
							t.Fatalf("seed %d after %d inserts: %v", seed, i+1, err)
						}
					}
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("seed %d final: %v", seed, err)
				}
				if tree.Parked() == 0 {
					t.Fatalf("seed %d: starvation produced no parked insertions", seed)
				}
				got := tree.Weight()
				if diff := math.Abs(got - expected); diff > 1e-6*expected {
					t.Fatalf("seed %d λ=%v: weight %v, want %v (mass not conserved)", seed, tc.lambda, got, expected)
				}
				if tc.lambda == 0 && math.Abs(got-n) > 1e-6*n {
					t.Fatalf("seed %d: undecayed weight %v != %d inserts", seed, got, n)
				}
			}
		})
	}
}

// TestPruneUnderPressure: the maintenance sweep on a budget-starved
// decaying tree must drop only sub-floor mass, keep the invariant, and
// leave no micro-cluster below the floor.
func TestPruneUnderPressure(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0.01
	tree, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		budget := -1
		if i%3 != 0 {
			budget = rng.Intn(2)
		}
		if err := tree.Insert(x, float64(i+1), budget); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	const floor = 0.5
	before := tree.Weight()
	nodesBefore := tree.CountNodes()
	points, subtrees := tree.Prune(floor)
	if points == 0 {
		t.Fatal("fast-decaying uniform stream pruned nothing")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariant after prune: %v", err)
	}
	after := tree.Weight()
	if after > before+1e-9 {
		t.Fatalf("prune increased weight %v → %v", before, after)
	}
	// Every removal was below the floor, so the loss is bounded.
	maxLoss := float64(points+subtrees) * floor
	if before-after > maxLoss+1e-9 {
		t.Fatalf("prune dropped %v mass from %d removals (max %v): above-floor mass lost",
			before-after, points+subtrees, maxLoss)
	}
	for i, mc := range tree.MicroClusters(0) {
		if mc.Weight < floor {
			t.Fatalf("micro-cluster %d weight %v survived below floor %v", i, mc.Weight, floor)
		}
	}
	if tree.CountNodes() > nodesBefore {
		t.Fatalf("prune grew the tree: %d → %d nodes", nodesBefore, tree.CountNodes())
	}
	// The pruned tree stays live.
	if err := tree.Insert([]float64{0.5, 0.5}, tree.Now()+1, -1); err != nil {
		t.Fatalf("insert after prune: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariant after post-prune insert: %v", err)
	}
}

// TestPruneEverything: a floor above all remaining mass must empty the
// tree back to a single leaf root without breaking it.
func TestPruneEverything(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Lambda = 0.2 // aggressive: weight halves every 5 objects
	tree, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}, float64(i+1), -1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	tree.Prune(1e6)
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariant after total prune: %v", err)
	}
	if w := tree.Weight(); w != 0 {
		t.Fatalf("weight %v after total prune, want 0", w)
	}
	if n := tree.CountNodes(); n != 1 {
		t.Fatalf("%d nodes after total prune, want the empty root leaf", n)
	}
	// And it accepts a fresh stream.
	if err := tree.Insert([]float64{0.1, 0.9}, tree.Now()+1, -1); err != nil {
		t.Fatalf("insert after total prune: %v", err)
	}
	if w := tree.Weight(); math.Abs(w-1) > 1e-12 {
		t.Fatalf("weight %v after restart insert, want 1", w)
	}
}
