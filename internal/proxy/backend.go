package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/replica"
)

// backend is one upstream process: its base URL, a dedicated pooled
// transport (so one slow backend cannot starve another's connection
// pool), request counters, and the last probe's view of it.
type backend struct {
	url       string
	group     int
	seedRole  bool // configured as the group's primary seed
	client    *http.Client
	transport *http.Transport

	requests  atomic.Int64
	errors    atomic.Int64
	redirects atomic.Int64

	mu sync.Mutex
	st probeState
}

// probeState is what the last /stats probe learned.
type probeState struct {
	ok           bool
	role         string
	epoch        uint64
	fenced       bool
	recovering   bool
	draining     bool
	stalenessMs  int64
	appliedLSN   uint64
	observations int
	weight       float64
	hubBuffered  int
	at           time.Time
}

// backendStats is the subset of a server's /stats the prober reads.
type backendStats struct {
	Role            string  `json:"role"`
	Epoch           uint64  `json:"epoch"`
	Fenced          bool    `json:"fenced"`
	Recovering      bool    `json:"recovering"`
	Draining        bool    `json:"draining"`
	StalenessMs     int64   `json:"staleness_ms"`
	AppliedLSN      uint64  `json:"applied_lsn"`
	Observations    int     `json:"observations"`
	Weight          float64 `json:"weight"`
	ReplSubBuffered []int   `json:"repl_sub_buffered"`
}

// newBackend builds a backend with its own pooled transport. The
// client chases redirects (a follower's 307 to its primary, method and
// body preserved) up to a small bound, counting them.
func newBackend(url string, group int, seedRole bool) *backend {
	tr := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
	b := &backend{url: url, group: group, seedRole: seedRole, transport: tr}
	b.client = &http.Client{
		Transport: tr,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) >= 3 {
				return fmt.Errorf("proxy: redirect chain exceeded 3 hops")
			}
			b.redirects.Add(1)
			return nil
		},
	}
	return b
}

func (b *backend) closeIdle() { b.transport.CloseIdleConnections() }

// state returns the last probe's view.
func (b *backend) state() probeState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

func (b *backend) setState(st probeState) {
	b.mu.Lock()
	b.st = st
	b.mu.Unlock()
}

// group is one primary/replica group plus the read round-robin cursor.
type group struct {
	index    int
	backends []*backend
	rr       atomic.Uint64
}

// anyHealthy reports whether any backend answered its last probe.
func (g *group) anyHealthy() bool {
	for _, b := range g.backends {
		if b.state().ok {
			return true
		}
	}
	return false
}

// primary returns the group's routable primary: probed ok, reporting
// role primary, not fenced/recovering/draining; the highest epoch wins
// when a stale ex-primary is still answering.
func (g *group) primary() *backend {
	var best *backend
	var bestEpoch uint64
	for _, b := range g.backends {
		st := b.state()
		if st.ok && st.role == "primary" && !st.fenced && !st.recovering && !st.draining {
			if best == nil || st.epoch > bestEpoch {
				best, bestEpoch = b, st.epoch
			}
		}
	}
	return best
}

// observations is the group's probed observation count (primary's view
// preferred; any healthy backend's otherwise) — the size the budget
// split weighs this group by.
func (g *group) observations() int {
	if b := g.primary(); b != nil {
		return b.state().observations
	}
	for _, b := range g.backends {
		if st := b.state(); st.ok {
			return st.observations
		}
	}
	return 0
}

// readTargets plans one read: fresh followers (probed ok, staleness
// within maxStale) ordered least-stale-first with the head rotated
// round-robin so load spreads, and the primary appended as the
// degrade-never-error fallback. viaPrimary reports that no fresh
// follower existed and the read will hit the primary directly.
func (g *group) readTargets(maxStale time.Duration) (targets []*backend, viaPrimary bool) {
	type cand struct {
		b     *backend
		stale int64
	}
	var fresh []cand
	for _, b := range g.backends {
		st := b.state()
		if st.ok && st.role == "follower" && !st.recovering && !st.draining &&
			st.stalenessMs >= 0 && st.stalenessMs <= maxStale.Milliseconds() {
			fresh = append(fresh, cand{b, st.stalenessMs})
		}
	}
	pb := g.primary()
	if len(fresh) == 0 {
		if pb != nil {
			return []*backend{pb}, true
		}
		// Cold start: nothing probed yet — try everything, seed first.
		for _, b := range g.backends {
			targets = append(targets, b)
		}
		return targets, true
	}
	sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].stale < fresh[j].stale })
	head := int(g.rr.Add(1)-1) % len(fresh)
	targets = append(targets, fresh[head].b)
	for i, c := range fresh {
		if i != head {
			targets = append(targets, c.b)
		}
	}
	if pb != nil {
		targets = append(targets, pb)
	}
	return targets, false
}

// ---------------------------------------------------------------------
// Prober

// ProbeNow sweeps every group synchronously: each backend's /stats is
// fetched in parallel, then stale unfenced primaries are told about the
// newest epoch so they fence themselves (the proxy as fencing
// messenger — a dead primary that comes back learns it lost the moment
// the prober sees it).
func (p *Proxy) ProbeNow() {
	var wg sync.WaitGroup
	for _, g := range p.groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			p.probeGroup(g)
		}(g)
	}
	wg.Wait()
}

// probeGroup probes all of g's backends and runs the fencing assist.
func (p *Proxy) probeGroup(g *group) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			p.probeBackend(b)
		}(b)
	}
	wg.Wait()
	p.fenceStale(g)
}

// probeTimeout bounds one probe exchange.
func (p *Proxy) probeTimeout() time.Duration {
	d := p.cfg.ProbeEvery
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (p *Proxy) probeBackend(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout())
	defer cancel()
	status, data, err := b.probeFetch(ctx)
	st := probeState{at: time.Now()}
	if err == nil && status == http.StatusOK {
		var bs backendStats
		if json.Unmarshal(data, &bs) == nil {
			st.ok = true
			st.role = bs.Role
			st.epoch = bs.Epoch
			st.fenced = bs.Fenced
			st.recovering = bs.Recovering
			st.draining = bs.Draining
			st.stalenessMs = bs.StalenessMs
			st.appliedLSN = bs.AppliedLSN
			st.observations = bs.Observations
			st.weight = bs.Weight
			for _, d := range bs.ReplSubBuffered {
				if d > st.hubBuffered {
					st.hubBuffered = d
				}
			}
		}
	}
	b.setState(st)
}

// fenceStale is the prober's fencing assist: when a group shows more
// than one live unfenced primary (a restarted ex-primary racing the
// promoted replica), every lower-epoch one is probed with the max
// epoch via the replication fencing header so it durably fences
// itself, then re-probed to pick the fenced state up.
func (p *Proxy) fenceStale(g *group) {
	var maxEpoch uint64
	count := 0
	for _, b := range g.backends {
		if st := b.state(); st.ok && st.role == "primary" && !st.fenced {
			count++
			if st.epoch > maxEpoch {
				maxEpoch = st.epoch
			}
		}
	}
	if count < 2 {
		return
	}
	for _, b := range g.backends {
		if st := b.state(); st.ok && st.role == "primary" && !st.fenced && st.epoch < maxEpoch {
			p.fenceProbe(b, maxEpoch)
			p.probeBackend(b)
		}
	}
}

// probeFetch is a /stats exchange outside the request counters, so the
// routing counts /stats reports measure routed traffic, not probes.
func (b *backend) probeFetch(ctx context.Context) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/stats", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// fenceProbe tells b a primary at epoch exists, via the same header a
// reconnecting follower would send.
func (p *Proxy) fenceProbe(b *backend, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/replicate", nil)
	if err != nil {
		return
	}
	req.Header.Set(replica.EpochHeader, replica.FormatEpoch(epoch))
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
