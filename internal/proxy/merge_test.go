package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/server"
)

// genPoint draws from three Gaussian blobs, one per class — the same
// synthetic mixture the server tests use.
func genPoint(rng *rand.Rand) ([]float64, int) {
	label := rng.Intn(3)
	centers := [3][3]float64{{0, 0, 0}, {3, -3, 0}, {6, -6, 0}}
	x := make([]float64, 3)
	for d := 0; d < 3; d++ {
		x[d] = centers[label][d] + rng.NormFloat64()*0.5
	}
	return x, label
}

// newClassGroups builds k single-shard in-memory classification
// servers behind httptest listeners plus a proxy over them (one group
// each, the backend as its own primary), and the k-shard single-process
// reference the proxy must match digit for digit.
func newClassGroups(t *testing.T, k int, cfg Config) (*Proxy, *server.Server) {
	t.Helper()
	labels := []int{0, 1, 2}
	var groups []Group
	for i := 0; i < k; i++ {
		s, err := server.NewEmpty(1, core.DefaultConfig(3), labels, core.MultiOptions{}, server.Config{})
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		groups = append(groups, Group{Primary: ts.URL})
	}
	ref, err := server.NewEmpty(k, core.DefaultConfig(3), labels, core.MultiOptions{}, server.Config{})
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	cfg.Groups = groups
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, ref
}

// postJSON posts one JSON body and returns status plus the raw
// response.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, data
}

// getBytes fetches one URL's body.
func getBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, data
}

// TestProxyClassifyMergeExact is the classify half of the merge
// acceptance criterion: inserts routed through the proxy across 3
// single-shard groups, then proxied classifications must be
// digit-identical — label, scores, weight, granted, nodes read — to a
// 3-shard single process over the same stream. Holds because the proxy
// routes with the engine's shard hash, splits budgets under the
// in-process contract, and merges with the same size-weighted
// log-sum-exp (exact for single-shard groups).
func TestProxyClassifyMergeExact(t *testing.T) {
	p, ref := newClassGroups(t, 3, Config{})
	p.Start()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		x, label := genPoint(rng)
		if err := ref.Insert(x, label); err != nil {
			t.Fatalf("ref insert %d: %v", i, err)
		}
		body, _ := json.Marshal(map[string]interface{}{"x": x, "label": label})
		status, resp := postJSON(t, pts.URL+"/insert", string(body))
		if status != http.StatusOK {
			t.Fatalf("proxy insert %d: status %d: %s", i, status, resp)
		}
	}
	p.ProbeNow() // pick up the final observation counts for budget splits

	for trial := 0; trial < 60; trial++ {
		x, _ := genPoint(rng)
		budget := []int{0, 1, 3, 7, 32, 100, -1}[trial%7]
		body, _ := json.Marshal(map[string]interface{}{"x": x, "budget": budget, "scores": true})
		status, resp := postJSON(t, pts.URL+"/classify", string(body))
		if status != http.StatusOK {
			t.Fatalf("trial %d: proxy status %d: %s", trial, status, resp)
		}
		var got server.Result
		if err := json.Unmarshal(resp, &got); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		want, err := ref.Classify(x, budget)
		if err != nil {
			t.Fatalf("trial %d: ref classify: %v", trial, err)
		}
		if got.Label != want.Label {
			t.Fatalf("trial %d (budget %d): label %d != ref %d", trial, budget, got.Label, want.Label)
		}
		if got.Requested != want.Requested || got.Granted != want.Granted ||
			got.NodesRead != want.NodesRead || got.Degraded != want.Degraded {
			t.Fatalf("trial %d: budgets %+v != ref %+v", trial, got, want)
		}
		if got.Weight != want.Weight {
			t.Fatalf("trial %d: weight %v != ref %v", trial, got.Weight, want.Weight)
		}
		if len(got.Scores) != len(want.Scores) {
			t.Fatalf("trial %d: %d scores != ref %d", trial, len(got.Scores), len(want.Scores))
		}
		for c := range want.Scores {
			if got.Scores[c] != want.Scores[c] {
				t.Fatalf("trial %d class %d: score %v != ref %v (digit-identity broken)",
					trial, c, got.Scores[c], want.Scores[c])
			}
		}
	}

	// Routing sanity: every group primary saw inserts, and the counts
	// match the engine's own shard partition.
	st := p.CurrentStats()
	if !st.Proxy {
		t.Fatal("stats missing proxy marker")
	}
	refSizes := ref.Stats().ShardSizes
	for i, b := range st.Backends {
		if b.Observations != refSizes[i] {
			t.Fatalf("group %d has %d observations, ref shard has %d — routing diverged",
				i, b.Observations, refSizes[i])
		}
	}
}

// TestProxyClusterMergeExact is the clustering half: objects ingested
// through the proxy across 3 single-shard cluster groups, then the
// proxied /microclusters and /macroclusters responses must be
// byte-identical to a 3-shard single process over the same stream
// (decay off: each group's logical clock ticks only on its own
// inserts, so digit-identity across topologies requires λ=0).
func TestProxyClusterMergeExact(t *testing.T) {
	ccfg := clustree.DefaultConfig(3)
	ccfg.Lambda = 0
	var groups []Group
	for i := 0; i < 3; i++ {
		s, err := server.NewCluster(ccfg, 1, server.Config{}, server.ClusterOptions{})
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		groups = append(groups, Group{Primary: ts.URL})
	}
	ref, err := server.NewCluster(ccfg, 3, server.Config{}, server.ClusterOptions{})
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	p, err := New(Config{Groups: groups})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.Start()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		x, _ := genPoint(rng)
		body, _ := json.Marshal(map[string]interface{}{"x": x, "budget": 6})
		status, resp := postJSON(t, pts.URL+"/cluster", string(body))
		if status != http.StatusOK {
			t.Fatalf("proxy cluster %d: status %d: %s", i, status, resp)
		}
		if _, err := ref.Insert(x, 6); err != nil {
			t.Fatalf("ref cluster %d: %v", i, err)
		}
	}

	for _, path := range []string{
		"/microclusters",
		"/microclusters?minw=2",
		"/macroclusters",
		"/macroclusters?eps=1.5&minw=3",
	} {
		st1, got := getBytes(t, pts.URL+path)
		st2, want := getBytes(t, refTS.URL+path)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: status proxy=%d ref=%d", path, st1, st2)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverged from single-process run:\nproxy: %s\nref:   %s", path, got, want)
		}
	}
}

// TestMergeClassifyRejectsMisalignedLabels pins the merge guard: groups
// answering with different label sets must fail loudly, not mis-mix.
func TestMergeClassifyRejectsMisalignedLabels(t *testing.T) {
	a := &server.Result{Labels: []int{0, 1}, Scores: server.ScoreList{-1, -2}, Weight: 1}
	b := &server.Result{Labels: []int{0, 2}, Scores: server.ScoreList{-1, -2}, Weight: 1}
	if _, err := mergeClassify([]*server.Result{a, b}, 10); err == nil {
		t.Fatal("misaligned label sets merged without error")
	}
}

// TestProxyReadyzAndWriteRouting covers the plumbing: readiness flips
// with draining, unroutable writes fail with 503 + Retry-After, and a
// write sent while the proxy only knows a follower seed follows the
// follower's 307 to the true primary.
func TestProxyReadyzAndWriteRouting(t *testing.T) {
	labels := []int{0, 1, 2}
	prim, err := server.NewEmpty(1, core.DefaultConfig(3), labels, core.MultiOptions{}, server.Config{})
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	primTS := httptest.NewServer(prim.Handler())
	defer primTS.Close()

	// A fake "follower" that 307s every write to the real primary, the
	// way a follower backend does.
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/stats":
			fmt.Fprintf(w, `{"role":"follower","staleness_ms":1,"observations":0,"weight":0}`)
		case "/insert", "/cluster":
			w.Header().Set("Location", primTS.URL+r.URL.Path)
			w.WriteHeader(http.StatusTemporaryRedirect)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer follower.Close()

	// Group whose configured "primary" is actually the redirecting
	// follower: the proxy's optimistic write must land on the true
	// primary via 307-follow.
	p, err := New(Config{Groups: []Group{{Primary: follower.URL}}, WriteRetries: 1,
		WriteTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.Start()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	status, resp := postJSON(t, pts.URL+"/insert", `{"x":[3.0,-3.0,0.0],"label":1}`)
	if status != http.StatusOK {
		t.Fatalf("redirected insert: status %d: %s", status, resp)
	}
	if prim.Len() != 1 {
		t.Fatalf("primary has %d observations after 307-followed insert, want 1", prim.Len())
	}
	st := p.CurrentStats()
	if st.Backends[0].Redirects < 1 {
		t.Fatalf("redirect counter %d, want >= 1", st.Backends[0].Redirects)
	}

	// Readiness: healthy now, 503 + Retry-After while draining.
	resp2, err := http.Get(pts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d, want 200", resp2.StatusCode)
	}
	p.SetDraining(true)
	resp2, err = http.Get(pts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz has no Retry-After")
	}
	p.SetDraining(false)

	// NDJSON bodies are refused with a targeted error.
	req, _ := http.NewRequest(http.MethodPost, pts.URL+"/classify", strings.NewReader(`{}`))
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("ndjson classify: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("ndjson classify status %d, want 400", resp3.StatusCode)
	}
}
