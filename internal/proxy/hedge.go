package proxy

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyTracker keeps a ring of recent read latencies and a cached
// p95 — the hedge trigger. The p95 is recomputed every refreshEvery
// observations rather than per read, so the hot path pays one atomic
// load.
type latencyTracker struct {
	mu      sync.Mutex
	samples [256]int64
	n       int
	idx     int
	since   int
	p95ns   atomic.Int64
	count   atomic.Int64
}

// trackerMinSamples is how many observations the tracker needs before
// its p95 is trusted; below it the hedge delay is unwarmedHedgeDelay.
const trackerMinSamples = 8

// trackerRefreshEvery is how many observations pass between p95
// recomputations.
const trackerRefreshEvery = 16

// unwarmedHedgeDelay is the hedge delay before the tracker has enough
// samples.
const unwarmedHedgeDelay = 25 * time.Millisecond

func newLatencyTracker() *latencyTracker { return &latencyTracker{} }

// observe records one read latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.idx] = int64(d)
	t.idx = (t.idx + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}
	t.since++
	recompute := t.since >= trackerRefreshEvery || int64(t.n) == trackerMinSamples
	if recompute {
		t.since = 0
		buf := make([]int64, t.n)
		copy(buf, t.samples[:t.n])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		t.p95ns.Store(buf[(len(buf)*95)/100])
	}
	t.count.Add(1)
	t.mu.Unlock()
}

// p95 returns the cached p95 and whether enough samples back it.
func (t *latencyTracker) p95() (time.Duration, bool) {
	if t.count.Load() < trackerMinSamples {
		return 0, false
	}
	return time.Duration(t.p95ns.Load()), true
}

// hedgeDelay resolves the current hedge trigger: the tracked p95
// floored at HedgeMin, or the fixed unwarmed delay before the tracker
// has seen enough reads.
func (p *Proxy) hedgeDelay() time.Duration {
	d, ok := p.lat.p95()
	if !ok {
		d = unwarmedHedgeDelay
	}
	if d < p.cfg.HedgeMin {
		d = p.cfg.HedgeMin
	}
	if max := p.cfg.ReadTimeout / 2; d > max {
		d = max
	}
	return d
}

// readResult is one completed backend exchange inside a hedged read.
type readResult struct {
	backend *backend
	status  int
	body    []byte
	err     error
	hedged  bool
}

// hedgedRead serves one read against a group. The first attempt goes to
// the group's planned head target; if hedging is on and no response
// arrived within the tracked delay, exactly one hedge is issued to the
// next target (the next-least-stale replica). The first response wins
// and every loser's context is cancelled. Hard failures (transport
// error or 5xx) fall through to the next unlaunched target immediately,
// ending with the primary — the degrade-never-error fallback.
func (p *Proxy) hedgedRead(ctx context.Context, g *group, build func(b *backend) readAttempt) (readResult, error) {
	targets, viaPrimary := g.readTargets(p.cfg.MaxStaleness)
	if len(targets) == 0 {
		return readResult{}, fmt.Errorf("no reachable backend")
	}
	if viaPrimary {
		p.primaryFallbacks.Add(1)
	}
	start := time.Now()
	results := make(chan readResult, len(targets))
	cancels := make([]context.CancelFunc, 0, len(targets))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next := 0
	inflight := 0
	launch := func(hedged bool) {
		b := targets[next]
		next++
		inflight++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		at := build(b)
		go func() {
			status, body, err := b.fetch(actx, at.method, at.path, at.body)
			results <- readResult{backend: b, status: status, body: body, err: err, hedged: hedged}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	hedgeArmed := p.cfg.Hedge && next < len(targets)
	if hedgeArmed {
		timer := time.NewTimer(p.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return readResult{}, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next < len(targets) {
				p.hedges.Add(1)
				launch(true)
			}
		case rr := <-results:
			inflight--
			if rr.err == nil && rr.status < 500 {
				if rr.hedged {
					p.hedgeWins.Add(1)
				}
				p.lat.observe(time.Since(start))
				return rr, nil
			}
			if rr.err != nil {
				lastErr = rr.err
			} else {
				lastErr = backendStatusError(rr.status, rr.body)
			}
			// Hard failure: try the next target right away; when none are
			// left and nothing is in flight, the read has truly failed.
			if next < len(targets) {
				launch(false)
			} else if inflight == 0 {
				return readResult{}, lastErr
			}
		}
	}
}
