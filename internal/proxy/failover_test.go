package proxy

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/replica"
	"bayestree/internal/server"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// statsField fetches one numeric field from a backend's /stats.
func statsField(t *testing.T, url, field string) float64 {
	t.Helper()
	status, body := getBytes(t, url+"/stats")
	if status != http.StatusOK {
		return -1
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	v, _ := raw[field].(float64)
	return v
}

// snapshotOf captures a server's full model state.
func snapshotOf(t *testing.T, s *server.Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestProxyFailoverKillPrimary is the failover acceptance criterion at
// the proxy layer: a WAL-replicated primary dies mid-stream, the
// follower is promoted, and the proxy must reroute writes to it with
// zero acked-insert loss — every insert the proxy acked is in the
// promoted model, digit-identical to an uninterrupted run — while a
// restarted stale primary is fenced by the prober's epoch probe and
// refuses writes durably.
func TestProxyFailoverKillPrimary(t *testing.T) {
	const phase1, phase2 = 120, 60
	rng := rand.New(rand.NewSource(23))
	xs := make([][]float64, phase1+phase2+1)
	ys := make([]int, len(xs))
	for i := range xs {
		xs[i], ys[i] = genPoint(rng)
	}

	primDir := t.TempDir()
	prim, err := server.OpenDurableServer(server.DurabilityOptions{Dir: primDir}, server.Config{},
		func() (*server.Server, error) {
			return server.NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.Recover(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(prim.Handler())
	primAddr := ts.Listener.Addr().String()

	foll, err := server.NewFollowerServer(server.DurabilityOptions{Dir: t.TempDir()}, server.Config{}, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tail := replica.New(foll, replica.Options{
		PrimaryURL: ts.URL, Workload: replica.WorkloadClassify, Epoch: foll.Epoch,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	tail.Start()
	fts := httptest.NewServer(foll.Handler())
	defer fts.Close()

	p, err := New(Config{
		Groups:       []Group{{Primary: ts.URL, Replicas: []string{fts.URL}}},
		ProbeEvery:   30 * time.Millisecond,
		WriteRetries: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Start()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	// Phase 1: acked inserts through the proxy land on the primary and
	// replicate to the follower.
	for i := 0; i < phase1; i++ {
		body, _ := json.Marshal(map[string]interface{}{"x": xs[i], "label": ys[i]})
		status, resp := postJSON(t, pts.URL+"/insert", string(body))
		if status != http.StatusOK {
			t.Fatalf("insert %d: status %d: %s", i, status, resp)
		}
	}
	waitFor(t, 10*time.Second, "follower to apply all acked inserts", func() bool {
		return statsField(t, fts.URL, "applied_lsn") == phase1
	})

	// Reads through the proxy are served by the fresh follower, not the
	// primary.
	p.ProbeNow()
	classifyVia(t, pts.URL)
	if st := p.CurrentStats(); st.Backends[1].Requests < 1 {
		t.Fatalf("follower served %d reads, want >= 1 (reads must scatter to followers)", st.Backends[1].Requests)
	}

	// The primary dies; the follower is promoted. The epoch bump is the
	// new line of succession.
	ts.CloseClientConnections()
	ts.Close()
	tail.Stop()
	if err := foll.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	p.ProbeNow()

	// Phase 2: the proxy reroutes writes to the promoted replica — every
	// one must be acked, none lost.
	for i := phase1; i < phase1+phase2; i++ {
		body, _ := json.Marshal(map[string]interface{}{"x": xs[i], "label": ys[i]})
		status, resp := postJSON(t, pts.URL+"/insert", string(body))
		if status != http.StatusOK {
			t.Fatalf("post-failover insert %d: status %d: %s", i, status, resp)
		}
	}

	// Zero acked-insert loss and digit-identity: the promoted model
	// equals an uninterrupted single-process run over every acked
	// insert.
	promoted := foll.Current()
	if got := promoted.Len(); got != phase1+phase2 {
		t.Fatalf("promoted replica has %d observations, want %d — acked inserts lost", got, phase1+phase2)
	}
	ref, err := server.NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < phase1+phase2; i++ {
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(snapshotOf(t, promoted), snapshotOf(t, ref)) {
		t.Fatal("promoted replica differs from the uninterrupted reference run")
	}

	// The stale primary comes back on its old address at its old epoch.
	// The prober's fencing assist must tell it about the new epoch so it
	// durably fences itself and refuses writes.
	prim.CloseDurability()
	prim2, err := server.OpenDurableServer(server.DurabilityOptions{Dir: primDir}, server.Config{},
		func() (*server.Server, error) {
			return server.NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
		})
	if err != nil {
		t.Fatalf("reopen stale primary: %v", err)
	}
	if err := prim2.Recover(); err != nil {
		t.Fatalf("recover stale primary: %v", err)
	}
	l, err := net.Listen("tcp", primAddr)
	if err != nil {
		t.Fatalf("rebind %s: %v", primAddr, err)
	}
	ts2 := httptest.NewUnstartedServer(prim2.Handler())
	ts2.Listener.Close()
	ts2.Listener = l
	ts2.Start()
	defer ts2.Close()

	p.ProbeNow() // sees two primaries; fences the lower epoch
	waitFor(t, 5*time.Second, "stale primary to be fenced", func() bool {
		status, body := getBytes(t, ts2.URL+"/stats")
		if status != http.StatusOK {
			return false
		}
		var raw struct {
			Fenced bool `json:"fenced"`
		}
		return json.Unmarshal(body, &raw) == nil && raw.Fenced
	})

	// Direct writes to the fenced ex-primary fail; writes through the
	// proxy keep landing on the promoted replica.
	body, _ := json.Marshal(map[string]interface{}{"x": xs[phase1+phase2], "label": ys[phase1+phase2]})
	status, _ := postJSON(t, ts2.URL+"/insert", string(body))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("fenced primary answered insert with %d, want 503", status)
	}
	status, resp := postJSON(t, pts.URL+"/insert", string(body))
	if status != http.StatusOK {
		t.Fatalf("proxied insert with stale primary back: status %d: %s", status, resp)
	}
	if got := promoted.Len(); got != phase1+phase2+1 {
		t.Fatalf("promoted replica has %d observations, want %d", got, phase1+phase2+1)
	}

	if err := foll.Persist(); err != nil {
		t.Fatal(err)
	}
	prim2.CloseDurability()
}
