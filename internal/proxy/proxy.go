// Package proxy is the scatter-gather serving tier: a stateless L7
// proxy in front of one or more primary/replica groups that makes
// follower fan-out pay without giving up the engine's exactness.
//
// Writes (/insert, /cluster) are consistent-hash-routed on the point's
// shard key to the owning group's primary — the same FNV-64a content
// hash the engine uses across shards (server.RouteShard), so a proxy
// over k single-shard groups partitions the stream exactly as a
// k-shard single process would. A 307 from a backend that turned out
// to be a follower is followed automatically (method and body
// preserved), and a failed or fenced primary triggers a synchronous
// re-probe and bounded retries, so writes fail over to a promoted
// replica without the client noticing.
//
// Reads (/classify, /microclusters, /macroclusters) scatter across
// healthy followers whose staleness bound (staleness_ms from /stats)
// is within the configured window, splitting the node-read budget
// size-proportionally under the in-process contract
// (server.SplitBudget) and merging exactly: per-class size-weighted
// log-sum-exp for classify scores, CF-additive micro-cluster union in
// group order for cluster reads (the offline macro step runs on the
// union in the proxy). When a group has no fresh follower the read
// degrades to its primary rather than erroring — the serving tier's
// degrade-never-error contract extended across processes.
//
// Tail latency: every backend gets its own pooled http.Transport,
// request deadlines propagate, and reads hedge — after a delay tracked
// at the observed p95, one hedge goes to the next-least-stale replica,
// the first response wins and the loser's context is cancelled.
// Replicas are digit-identical, so hedged answers are byte-identical
// to unhedged ones.
package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/server"
	"bayestree/internal/stats"
)

// Group names one primary/replica group: the primary's base URL plus
// any number of follower base URLs.
type Group struct {
	// Primary is the group's write endpoint (and read fallback).
	Primary string
	// Replicas are the group's follower read endpoints.
	Replicas []string
}

// Config parameterises a Proxy. Zero values mean the documented
// defaults.
type Config struct {
	// Groups are the primary/replica groups fronted; writes hash across
	// them, reads scatter over all of them. At least one is required.
	Groups []Group
	// DefaultBudget is the classify node budget used when a request
	// sends 0 (default 32, matching the server default).
	DefaultBudget int
	// MaxBudget caps per-request budgets (default
	// server.DefaultMaxBudget).
	MaxBudget int
	// ProbeEvery is the health/staleness probe period (default 250ms).
	ProbeEvery time.Duration
	// MaxStaleness is the follower freshness window: followers whose
	// staleness bound exceeds it are skipped for reads (default 5s).
	MaxStaleness time.Duration
	// ReadTimeout bounds one proxied read end to end (default 10s).
	ReadTimeout time.Duration
	// WriteTimeout bounds one proxied write including failover retries
	// (default 10s).
	WriteTimeout time.Duration
	// Hedge enables hedged reads. HedgeMin floors the hedge delay
	// (default 2ms); until the latency tracker has enough samples the
	// delay is a fixed 25ms.
	Hedge    bool
	HedgeMin time.Duration
	// WriteRetries is how many times a failed write is retried after a
	// synchronous group re-probe (default 8).
	WriteRetries int
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 32
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = server.DefaultMaxBudget
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.WriteRetries <= 0 {
		c.WriteRetries = 8
	}
	return c
}

// Proxy is the scatter-gather tier. Create with New, arm the prober
// with Start, serve Handler, release with Close.
type Proxy struct {
	cfg    Config
	groups []*group
	start  time.Time
	lat    *latencyTracker

	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup

	reads            atomic.Int64
	readErrors       atomic.Int64
	writes           atomic.Int64
	writeErrors      atomic.Int64
	writeRetries     atomic.Int64
	hedges           atomic.Int64
	hedgeWins        atomic.Int64
	primaryFallbacks atomic.Int64
}

// New builds a Proxy over cfg. No probing happens until Start; a fresh
// proxy routes writes optimistically to each group's configured
// primary.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Groups) == 0 {
		return nil, errors.New("proxy: at least one group is required")
	}
	p := &Proxy{
		cfg:   cfg,
		start: time.Now(),
		lat:   newLatencyTracker(),
		stop:  make(chan struct{}),
	}
	for gi, gc := range cfg.Groups {
		if strings.TrimSpace(gc.Primary) == "" {
			return nil, fmt.Errorf("proxy: group %d has no primary URL", gi)
		}
		g := &group{index: gi}
		g.backends = append(g.backends, newBackend(gc.Primary, gi, true))
		for _, r := range gc.Replicas {
			if strings.TrimSpace(r) == "" {
				return nil, fmt.Errorf("proxy: group %d has an empty replica URL", gi)
			}
			g.backends = append(g.backends, newBackend(r, gi, false))
		}
		p.groups = append(p.groups, g)
	}
	return p, nil
}

// Start runs one synchronous probe sweep and then arms the background
// prober.
func (p *Proxy) Start() {
	p.ProbeNow()
	p.probeWG.Add(1)
	go func() {
		defer p.probeWG.Done()
		t := time.NewTicker(p.cfg.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ProbeNow()
			}
		}
	}()
}

// Close stops the prober and releases per-backend connection pools.
func (p *Proxy) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	p.probeWG.Wait()
	for _, g := range p.groups {
		for _, b := range g.backends {
			b.closeIdle()
		}
	}
	return nil
}

// SetDraining flips readiness: a draining proxy answers /readyz with
// 503 so load balancers stop sending it new work, while in-flight
// requests finish.
func (p *Proxy) SetDraining(v bool) { p.draining.Store(v) }

// Handler returns the proxy's HTTP surface: the serving endpoints it
// scatters (/classify, /insert, /cluster, /microclusters,
// /macroclusters) plus /stats, /healthz and /readyz of its own.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", p.handleClassify)
	mux.HandleFunc("/insert", p.handleWrite)
	mux.HandleFunc("/cluster", p.handleWrite)
	mux.HandleFunc("/microclusters", p.handleMicroClusters)
	mux.HandleFunc("/macroclusters", p.handleMacroClusters)
	mux.HandleFunc("/stats", p.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", p.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeUnavailable is the 503 + Retry-After shape the backends use for
// transient conditions, kept identical so clients see one convention
// through the proxy.
func writeUnavailable(w http.ResponseWriter, format string, args ...interface{}) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// isStream mirrors the server's NDJSON detection; the proxy refuses
// streamed bodies with a targeted error instead of mis-parsing them.
func isStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Content-Type"), "ndjson") ||
		r.URL.Query().Get("stream") == "1"
}

func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if p.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	for _, g := range p.groups {
		if !g.anyHealthy() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("group %d has no healthy backend", g.index),
				http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// ---------------------------------------------------------------------
// Writes: consistent-hash routing with 307-follow and failover

// writeBody is the part of a write body the router needs: the point,
// for the shard key.
type writeBody struct {
	X []float64 `json:"x"`
}

// errNoPrimary is the terminal routing error when a group has no
// routable primary even after re-probes.
var errNoPrimary = errors.New("proxy: group has no routable primary")

func (p *Proxy) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if p.draining.Load() {
		writeUnavailable(w, "draining")
		return
	}
	if isStream(r) {
		writeError(w, http.StatusBadRequest,
			"NDJSON streaming is not proxied; send single JSON requests (the proxy hash-routes each point individually)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var wb writeBody
	if err := json.Unmarshal(body, &wb); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(wb.X) == 0 {
		writeError(w, http.StatusBadRequest, "request has no point x to route on")
		return
	}
	gi := 0
	if len(p.groups) > 1 {
		gi = server.RouteShard(wb.X, len(p.groups))
	}
	status, resp, err := p.routeWrite(r.Context(), p.groups[gi], r.URL.Path, body)
	if err != nil {
		p.writeErrors.Add(1)
		writeUnavailable(w, "group %d: %v", gi, err)
		return
	}
	p.writes.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(resp)
}

// routeWrite sends one write to g's primary, re-probing and retrying on
// failure so a promotion mid-stream is chased instead of surfaced. The
// first attempt goes optimistically to the configured primary when no
// probe has succeeded yet — its 307, if it turned out to be a
// follower, is followed automatically by the backend client.
func (p *Proxy) routeWrite(ctx context.Context, g *group, path string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.WriteTimeout)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt <= p.cfg.WriteRetries; attempt++ {
		if attempt > 0 {
			p.writeRetries.Add(1)
			p.probeGroup(g)
			select {
			case <-ctx.Done():
				return 0, nil, fmt.Errorf("write deadline: %w (last: %v)", ctx.Err(), lastErr)
			case <-time.After(time.Duration(attempt) * 25 * time.Millisecond):
			}
		}
		b := g.primary()
		if b == nil {
			// Optimistic fallback: the configured primary seed. Covers the
			// cold window before the first probe and relies on 307-follow
			// if the seed is actually a follower.
			b = g.backends[0]
		}
		status, data, err := b.fetch(ctx, http.MethodPost, path, body)
		if err != nil {
			lastErr = err
			continue
		}
		switch status {
		case http.StatusServiceUnavailable, http.StatusConflict, http.StatusTemporaryRedirect:
			// Fenced, recovering, or a redirect loop the client refused to
			// chase further: re-probe and retry against the new topology.
			lastErr = fmt.Errorf("backend %s answered %d: %s", b.url, status, firstLine(data))
			continue
		default:
			return status, data, nil
		}
	}
	if lastErr == nil {
		lastErr = errNoPrimary
	}
	return 0, nil, lastErr
}

// firstLine compresses an error body for wrapping.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// ---------------------------------------------------------------------
// Reads: scatter, budget split, exact merge

// proxyClassifyRequest is the proxy's classify body — the server's
// shape; Scores asks the proxy to attach the merged scores just like a
// backend would.
type proxyClassifyRequest struct {
	X      []float64 `json:"x"`
	Budget int       `json:"budget"`
	Scores bool      `json:"scores"`
}

// groupSnapshot is the probe-derived view a read plans against.
type groupSnapshot struct {
	g    *group
	size int
}

func (p *Proxy) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if p.draining.Load() {
		writeUnavailable(w, "draining")
		return
	}
	if isStream(r) {
		writeError(w, http.StatusBadRequest,
			"NDJSON streaming is not proxied; send single JSON requests")
		return
	}
	var req proxyClassifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := p.classify(r.Context(), req)
	if err != nil {
		p.readErrors.Add(1)
		var he *httpError
		if errors.As(err, &he) {
			writeError(w, he.status, "%s", he.msg)
			return
		}
		writeUnavailable(w, "%v", err)
		return
	}
	p.reads.Add(1)
	if !req.Scores {
		res.Scores, res.Weight, res.Labels = nil, 0, nil
	}
	writeJSON(w, http.StatusOK, res)
}

// httpError carries a backend-determined status through the scatter
// path (a 400 for a bad point must stay a 400).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// clampBudget mirrors the engine's HTTP budget convention at the proxy:
// 0 means the default, negative or over-cap means the cap.
func (p *Proxy) clampBudget(budget int) int {
	if budget == 0 {
		budget = p.cfg.DefaultBudget
	}
	if budget < 0 || budget > p.cfg.MaxBudget {
		budget = p.cfg.MaxBudget
	}
	return budget
}

// classify scatters one classification: the requested budget is split
// across groups in proportion to their observation counts (the
// in-process shard contract), each group's share is served by a fresh
// follower (hedged) with literal budgets and scores requested, and the
// group answers are merged with the same size-weighted log-sum-exp the
// engine applies across shards.
func (p *Proxy) classify(ctx context.Context, req proxyClassifyRequest) (server.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ReadTimeout)
	defer cancel()
	requested := p.clampBudget(req.Budget)

	snaps := make([]groupSnapshot, len(p.groups))
	sizes := make([]int, len(p.groups))
	total := 0
	for i, g := range p.groups {
		snaps[i] = groupSnapshot{g: g, size: g.observations()}
		sizes[i] = snaps[i].size
		total += sizes[i]
	}
	if total == 0 {
		return server.Result{}, &httpError{http.StatusBadRequest, "server: no observations yet"}
	}
	budgets := server.SplitBudget(requested, sizes, total)

	answers := make([]*server.Result, len(p.groups))
	errs := make([]error, len(p.groups))
	var wg sync.WaitGroup
	for i := range p.groups {
		if sizes[i] == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(classifyWireRequest{
				X: req.X, Budget: budgets[i], Scores: true, Literal: true,
			})
			rr, err := p.hedgedRead(ctx, snaps[i].g, func(b *backend) readAttempt {
				return readAttempt{method: http.MethodPost, path: "/classify", body: body}
			})
			if err != nil {
				errs[i] = err
				return
			}
			if rr.status != http.StatusOK {
				errs[i] = backendStatusError(rr.status, rr.body)
				return
			}
			var res server.Result
			if err := json.Unmarshal(rr.body, &res); err != nil {
				errs[i] = fmt.Errorf("decode backend answer: %w", err)
				return
			}
			answers[i] = &res
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return server.Result{}, fmt.Errorf("group %d: %w", i, err)
		}
	}
	ordered := make([]*server.Result, 0, len(answers))
	for _, a := range answers {
		if a != nil {
			ordered = append(ordered, a)
		}
	}
	return mergeClassify(ordered, requested)
}

// classifyWireRequest is the backend-facing classify body: literal
// budgets (a split share of 0 means 0) with scores attached.
type classifyWireRequest struct {
	X       []float64 `json:"x"`
	Budget  int       `json:"budget"`
	Scores  bool      `json:"scores"`
	Literal bool      `json:"literal_budget"`
}

// backendStatusError maps a backend's non-200 answer into an error that
// preserves client-fault statuses.
func backendStatusError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := firstLine(body)
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if status >= 400 && status < 500 {
		return &httpError{status, msg}
	}
	return fmt.Errorf("backend status %d: %s", status, msg)
}

// mergeClassify combines per-group answers (in group order) with the
// engine's size-weighted log-sum-exp. Each answer's Scores are the
// group's combined log scores and Weight its total mass; because
// log-sum-exp of one element is exact, a single-shard group's scores
// are its shard's raw scores and this merge is digit-identical to the
// in-process merge over the same shards in the same order.
func mergeClassify(answers []*server.Result, requested int) (server.Result, error) {
	if len(answers) == 0 {
		return server.Result{}, &httpError{http.StatusBadRequest, "server: no observations yet"}
	}
	labels := answers[0].Labels
	totalW := 0.0
	granted, read := 0, 0
	degraded := false
	for _, a := range answers {
		if len(a.Labels) != len(labels) {
			return server.Result{}, fmt.Errorf("merge: label sets differ across groups (%v vs %v)", labels, a.Labels)
		}
		for i := range labels {
			if a.Labels[i] != labels[i] {
				return server.Result{}, fmt.Errorf("merge: label sets differ across groups (%v vs %v)", labels, a.Labels)
			}
		}
		totalW += a.Weight
		granted += a.Granted
		read += a.NodesRead
		degraded = degraded || a.Degraded
	}
	if totalW <= 0 {
		return server.Result{}, &httpError{http.StatusBadRequest, "server: no observations yet"}
	}
	combined := make([]float64, len(labels))
	buf := make([]float64, 0, len(answers))
	best := 0
	for c := range labels {
		buf = buf[:0]
		for _, a := range answers {
			if sc := a.Scores[c]; !math.IsInf(sc, -1) {
				buf = append(buf, math.Log(a.Weight/totalW)+sc)
			}
		}
		if len(buf) == 0 {
			combined[c] = math.Inf(-1)
		} else {
			combined[c] = stats.LogSumExp(buf)
		}
		if combined[c] > combined[best] {
			best = c
		}
	}
	return server.Result{
		Label: labels[best], Requested: requested, Granted: granted,
		NodesRead: read, Degraded: degraded || granted < requested,
		Scores: combined, Weight: totalW, Labels: labels,
	}, nil
}

// ---------------------------------------------------------------------
// Cluster reads: CF-additive union

// microClusterWire mirrors the server's micro-cluster JSON shape.
type microClusterWire struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean"`
	Radius float64   `json:"radius"`
}

// microListWire is the /microclusters response body.
type microListWire struct {
	MicroClusters []microClusterWire `json:"micro_clusters"`
	Count         int                `json:"count"`
}

// macroClusterWire mirrors the server's macro-cluster JSON shape.
type macroClusterWire struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean"`
	Size   int       `json:"size"`
}

// gatherMicro fans a /microclusters read across all groups and returns
// the union set in group order — exact, because every group's
// micro-clusters summarise a disjoint partition of the stream.
func (p *Proxy) gatherMicro(ctx context.Context, query string) ([]microClusterWire, error) {
	lists := make([][]microClusterWire, len(p.groups))
	errs := make([]error, len(p.groups))
	var wg sync.WaitGroup
	for i := range p.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr, err := p.hedgedRead(ctx, p.groups[i], func(b *backend) readAttempt {
				return readAttempt{method: http.MethodGet, path: "/microclusters" + query}
			})
			if err != nil {
				errs[i] = err
				return
			}
			if rr.status != http.StatusOK {
				errs[i] = backendStatusError(rr.status, rr.body)
				return
			}
			var ml microListWire
			if err := json.Unmarshal(rr.body, &ml); err != nil {
				errs[i] = fmt.Errorf("decode backend answer: %w", err)
				return
			}
			lists[i] = ml.MicroClusters
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", i, err)
		}
	}
	var union []microClusterWire
	for _, l := range lists {
		union = append(union, l...)
	}
	return union, nil
}

func (p *Proxy) handleMicroClusters(w http.ResponseWriter, r *http.Request) {
	if p.draining.Load() {
		writeUnavailable(w, "draining")
		return
	}
	minw := r.URL.Query().Get("minw")
	query := ""
	if minw != "" {
		query = "?minw=" + minw
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.ReadTimeout)
	defer cancel()
	union, err := p.gatherMicro(ctx, query)
	if err != nil {
		p.readErrors.Add(1)
		p.writeReadError(w, err)
		return
	}
	p.reads.Add(1)
	if union == nil {
		union = []microClusterWire{}
	}
	// The same map shape the backend uses, so a proxied response is
	// byte-identical to a single-process one over the same data.
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"micro_clusters": union, "count": len(union),
	})
}

func (p *Proxy) handleMacroClusters(w http.ResponseWriter, r *http.Request) {
	if p.draining.Load() {
		writeUnavailable(w, "draining")
		return
	}
	eps, err1 := queryFloat(r, "eps", 0.1)
	minw, err2 := queryFloat(r, "minw", 1)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "bad eps/minw: %v %v", err1, err2)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.ReadTimeout)
	defer cancel()
	// The offline macro step runs over the union micro-cluster set, so
	// gather every group's full set (minw=0) and cluster locally —
	// exactly what a single process does over its shard union.
	union, err := p.gatherMicro(ctx, "?minw=0")
	if err != nil {
		p.readErrors.Add(1)
		p.writeReadError(w, err)
		return
	}
	p.reads.Add(1)
	mcs := make([]clustree.MicroCluster, len(union))
	for i, m := range union {
		mcs[i] = clustree.MicroCluster{Weight: m.Weight, Mean: m.Mean, Radius: m.Radius}
	}
	macros, noise := clustree.MacroClusters(mcs, clustree.MacroOptions{Eps: eps, MinWeight: minw})
	out := make([]macroClusterWire, len(macros))
	for i, m := range macros {
		out[i] = macroClusterWire{Weight: m.Weight, Mean: m.Mean, Size: len(m.Members)}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"macro_clusters": out,
		"noise":          len(noise),
		"eps":            eps,
		"min_weight":     minw,
	})
}

// writeReadError renders a scatter-read failure, preserving
// client-fault statuses.
func (p *Proxy) writeReadError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		writeError(w, he.status, "%s", he.msg)
		return
	}
	writeUnavailable(w, "%v", err)
}

// queryFloat parses a float query parameter, using def when absent.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, s)
	}
	return v, nil
}

// ---------------------------------------------------------------------
// Read target selection

// readAttempt is one backend exchange a hedged read issues.
type readAttempt struct {
	method string
	path   string
	body   []byte
}

// fetch runs one fully-read HTTP exchange against the backend's pooled
// client.
func (b *backend) fetch(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.errors.Add(1)
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		b.errors.Add(1)
		return 0, nil, err
	}
	b.requests.Add(1)
	return resp.StatusCode, data, nil
}
