package proxy

import (
	"net/http"
	"time"
)

// Stats is the proxy's /stats document. The "proxy":true marker lets a
// generic client (the load harness) detect it is talking to the
// scatter-gather tier and read the per-backend routing counts.
type Stats struct {
	Proxy         bool    `json:"proxy"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Groups        int     `json:"groups"`
	Draining      bool    `json:"draining"`
	// Reads and Writes count proxied requests that succeeded end to end;
	// the error counters what the proxy had to fail after exhausting
	// failover and fallback.
	Reads       int64 `json:"reads"`
	ReadErrors  int64 `json:"read_errors"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// WriteRetries counts failover retries (each preceded by a
	// synchronous group re-probe).
	WriteRetries int64 `json:"write_retries"`
	// Hedges counts hedge requests issued, HedgeWins how many beat the
	// original; HedgeDelayMs is the current trigger delay (tracked p95,
	// floored).
	Hedges       int64   `json:"hedges"`
	HedgeWins    int64   `json:"hedge_wins"`
	HedgeDelayMs float64 `json:"hedge_delay_ms"`
	// PrimaryFallbacks counts reads that had no fresh follower and fell
	// back to the primary — the degrade-never-error path taken.
	PrimaryFallbacks int64 `json:"primary_fallbacks"`
	// Backends is the per-backend routing and health view, in group
	// order, primaries first within each group.
	Backends []BackendStats `json:"backends"`
}

// BackendStats is one upstream's routing counts and last-probe view.
type BackendStats struct {
	URL     string `json:"url"`
	Group   int    `json:"group"`
	Healthy bool   `json:"healthy"`
	Role    string `json:"role,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Fenced  bool   `json:"fenced"`
	// StalenessMs mirrors the follower's staleness bound (-1 before its
	// first catch-up; 0 on primaries).
	StalenessMs  int64   `json:"staleness_ms"`
	AppliedLSN   uint64  `json:"applied_lsn"`
	Observations int     `json:"observations"`
	Weight       float64 `json:"weight"`
	// HubBuffered is the deepest replication-hub buffer on this backend
	// (primaries only) — back-pressure toward an overflow cut.
	HubBuffered int `json:"hub_buffered"`
	// Requests counts proxied requests routed here (probes excluded);
	// Errors transport/read failures; Redirects 307s followed from it.
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Redirects int64 `json:"redirects"`
}

// CurrentStats snapshots the proxy counters and per-backend views.
func (p *Proxy) CurrentStats() Stats {
	st := Stats{
		Proxy:            true,
		UptimeSeconds:    time.Since(p.start).Seconds(),
		Groups:           len(p.groups),
		Draining:         p.draining.Load(),
		Reads:            p.reads.Load(),
		ReadErrors:       p.readErrors.Load(),
		Writes:           p.writes.Load(),
		WriteErrors:      p.writeErrors.Load(),
		WriteRetries:     p.writeRetries.Load(),
		Hedges:           p.hedges.Load(),
		HedgeWins:        p.hedgeWins.Load(),
		HedgeDelayMs:     float64(p.hedgeDelay().Milliseconds()),
		PrimaryFallbacks: p.primaryFallbacks.Load(),
	}
	for _, g := range p.groups {
		for _, b := range g.backends {
			ps := b.state()
			st.Backends = append(st.Backends, BackendStats{
				URL: b.url, Group: g.index, Healthy: ps.ok, Role: ps.role,
				Epoch: ps.epoch, Fenced: ps.fenced, StalenessMs: ps.stalenessMs,
				AppliedLSN: ps.appliedLSN, Observations: ps.observations,
				Weight: ps.weight, HubBuffered: ps.hubBuffered,
				Requests: b.requests.Load(), Errors: b.errors.Load(),
				Redirects: b.redirects.Load(),
			})
		}
	}
	return st
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.CurrentStats())
}
