package proxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// resultPayload is the identical answer both fake replicas serve —
// replicas of one primary are digit-identical, so hedged and unhedged
// reads must produce byte-identical proxy responses.
const resultPayload = `{"label":1,"requested":32,"granted":32,"nodes_read":32,"degraded":false,"scores":[-1.5,-0.5,-2.5],"weight":100,"labels":[0,1,2]}`

// fakeReplica is a scripted follower backend: fixed staleness, a
// switchable slow mode for /classify, and a record of whether a slow
// request saw its context cancelled.
type fakeReplica struct {
	ts        *httptest.Server
	slow      atomic.Bool
	slowDelay time.Duration
	cancelled chan struct{}
	served    atomic.Int64
}

func newFakeReplica(t *testing.T, stalenessMs int, slowDelay time.Duration) *fakeReplica {
	t.Helper()
	f := &fakeReplica{slowDelay: slowDelay, cancelled: make(chan struct{}, 16)}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/stats":
			fmt.Fprintf(w, `{"role":"follower","staleness_ms":%d,"observations":100,"weight":100}`, stalenessMs)
		case "/classify":
			// Consume the body like a real handler decoding it would —
			// the server only watches for client disconnects (context
			// cancellation) once the request body is drained.
			io.Copy(io.Discard, r.Body)
			if f.slow.Load() {
				select {
				case <-r.Context().Done():
					f.cancelled <- struct{}{}
					return
				case <-time.After(f.slowDelay):
				}
			}
			f.served.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, resultPayload)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// newFakePrimary serves primary-shaped /stats so the group has a
// fallback and an observation count for budget splits.
func newFakePrimary(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			fmt.Fprint(w, `{"role":"primary","observations":100,"weight":100}`)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// classifyVia sends one classify through a proxy handler and returns
// the response bytes.
func classifyVia(t *testing.T, url string) []byte {
	t.Helper()
	status, body := postJSON(t, url+"/classify", `{"x":[1.0,2.0,3.0],"budget":32}`)
	if status != http.StatusOK {
		t.Fatalf("classify status %d: %s", status, body)
	}
	return body
}

// TestHedgedReadBeatsSlowReplica is the hedging satellite: with one
// injected-slow replica as the least-stale (first) target, the hedge
// must fire after the tracked delay (here the HedgeMin floor), go to
// the next-least-stale replica, win, and cancel the slow loser — and
// the response must be byte-identical to an unhedged read.
func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	slow := newFakeReplica(t, 2, 300*time.Millisecond) // least stale → first target
	fast := newFakeReplica(t, 8, 0)
	prim := newFakePrimary(t)
	group := Group{Primary: prim.URL, Replicas: []string{slow.ts.URL, fast.ts.URL}}

	const hedgeMin = 40 * time.Millisecond
	p, err := New(Config{Groups: []Group{group}, Hedge: true, HedgeMin: hedgeMin})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.ProbeNow()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	// Warm the latency tracker past its sample floor with fast reads, so
	// the hedge delay is the tracked p95 (sub-millisecond here) floored
	// at HedgeMin.
	for i := 0; i < trackerMinSamples+2; i++ {
		classifyVia(t, pts.URL)
	}
	if d := p.hedgeDelay(); d != hedgeMin {
		t.Fatalf("hedge delay %v after warmup, want the %v floor over a sub-ms tracked p95", d, hedgeMin)
	}

	slow.slow.Store(true)
	p.groups[0].rr.Store(0) // deterministic head: the least-stale (slow) replica
	start := time.Now()
	hedged := classifyVia(t, pts.URL)
	elapsed := time.Since(start)

	if elapsed < hedgeMin-5*time.Millisecond {
		t.Fatalf("hedged read returned in %v, before the %v hedge delay — hedge fired early", elapsed, hedgeMin)
	}
	if elapsed >= slow.slowDelay {
		t.Fatalf("hedged read took %v, as slow as the slow replica — hedge did not win", elapsed)
	}
	st := p.CurrentStats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	select {
	case <-slow.cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("slow replica's request context was never cancelled")
	}

	// Byte-identity: the same read through a hedging-off proxy (slow
	// replica still slow, so the answer genuinely waits on it) is
	// byte-identical.
	p2, err := New(Config{Groups: []Group{group}, Hedge: false})
	if err != nil {
		t.Fatalf("proxy2: %v", err)
	}
	defer p2.Close()
	p2.ProbeNow()
	pts2 := httptest.NewServer(p2.Handler())
	defer pts2.Close()
	p2.groups[0].rr.Store(0)
	unhedged := classifyVia(t, pts2.URL)
	if !bytes.Equal(hedged, unhedged) {
		t.Fatalf("hedged response differs from unhedged:\nhedged:   %s\nunhedged: %s", hedged, unhedged)
	}
	if p2.CurrentStats().Hedges != 0 {
		t.Fatal("hedging-off proxy issued a hedge")
	}
}

// TestHedgeFallsBackToPrimaryWhenFollowersStale pins the
// degrade-never-error path: followers beyond the staleness window are
// skipped and the read lands on the primary instead of erroring.
func TestHedgeFallsBackToPrimaryWhenFollowersStale(t *testing.T) {
	stale := newFakeReplica(t, 60_000, 0) // a minute stale
	primServed := atomic.Int64{}
	prim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/stats":
			fmt.Fprint(w, `{"role":"primary","observations":100,"weight":100}`)
		case "/classify":
			primServed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, resultPayload)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer prim.Close()

	p, err := New(Config{Groups: []Group{{Primary: prim.URL, Replicas: []string{stale.ts.URL}}},
		MaxStaleness: 5 * time.Second})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.ProbeNow()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	classifyVia(t, pts.URL)
	if primServed.Load() != 1 {
		t.Fatalf("primary served %d reads, want 1 (stale follower must be skipped)", primServed.Load())
	}
	if stale.served.Load() != 0 {
		t.Fatal("stale follower served a read")
	}
	if p.CurrentStats().PrimaryFallbacks != 1 {
		t.Fatalf("primary_fallbacks=%d, want 1", p.CurrentStats().PrimaryFallbacks)
	}
}

// TestLatencyTrackerP95 pins the tracker: p95 is untrusted below the
// sample floor and tracks the ring's distribution above it.
func TestLatencyTrackerP95(t *testing.T) {
	tr := newLatencyTracker()
	if _, ok := tr.p95(); ok {
		t.Fatal("empty tracker trusted its p95")
	}
	for i := 0; i < 100; i++ {
		tr.observe(time.Duration(i+1) * time.Millisecond)
	}
	p95, ok := tr.p95()
	if !ok {
		t.Fatal("warmed tracker does not trust its p95")
	}
	// The cached p95 refreshes every trackerRefreshEvery observations,
	// so it may lag the newest samples by up to one refresh window.
	if p95 < 80*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v over 1..100ms, want ~95ms (within one refresh window)", p95)
	}
}
