// Package wal implements the segmented write-ahead log under the
// serving subsystem's durability layer: an append-only record log split
// into numbered segment files, written per shard so the log inherits
// the engine's sharded write path (appends happen under the owning
// shard's write lock and never contend across shards).
//
// Record framing is length-prefixed and checksummed: a 4-byte little-
// endian payload length, a 4-byte CRC32 (IEEE) of the payload, then the
// payload itself. The framing makes the two crash signatures
// distinguishable on replay: a torn tail — a record whose bytes stop at
// the end of the final segment, the signature of a crash mid-append —
// is dropped and counted, while a bad checksum in the middle of the log
// (bit rot, segment truncation by an operator) fails loudly with
// ErrCorrupt rather than silently replaying a prefix.
//
// Durability is group-committed: every Append is one write syscall, so
// an acked record always survives a process crash (it is in the OS page
// cache), and fsync — what makes records survive power loss — runs
// either inline per append (FsyncEvery 0) or on a background ticker
// that commits every append of the last interval with one fsync
// (FsyncEvery > 0). The interval is therefore the bounded power-loss
// window the operator trades for ingest throughput.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrCorrupt means a record failed its integrity check somewhere other
// than the tail of the final segment — real corruption, not a torn
// write — so replay cannot trust anything after it. Test with
// errors.Is.
var ErrCorrupt = errors.New("wal: corrupt record")

// frameHeader is the per-record overhead: 4 bytes payload length + 4
// bytes CRC32.
const frameHeader = 8

// maxRecord bounds a single record's payload, rejecting absurd declared
// lengths before any allocation when a frame header is itself corrupt.
const maxRecord = 16 << 20

// DefaultSegmentBytes is the segment rotation threshold when Options
// leaves SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// Options parameterise a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (0 means DefaultSegmentBytes). Segments are the unit of
	// truncation: a checkpoint rotates and then deletes whole segments.
	SegmentBytes int64
	// FsyncEvery is the group-commit interval: 0 fsyncs inline on every
	// append (synchronous durability), > 0 runs a background committer
	// that fsyncs the segment at most once per interval, amortising the
	// fsync across every append in it — the interval bounds how much
	// acked data a power loss can take (a mere process crash loses
	// nothing either way).
	FsyncEvery time.Duration
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Stats is a point-in-time summary of a log's lifetime counters.
type Stats struct {
	// Appends is the number of records appended.
	Appends int64
	// Syncs is the number of fsyncs issued — under group commit the
	// ratio Appends/Syncs is the amortisation factor.
	Syncs int64
	// Bytes is the total framed bytes written.
	Bytes int64
}

// segmentFile is the slice of *os.File the log writes through. It
// exists as a seam: fault-injection tests swap openSegmentFile to wrap
// the segment in a file that fails on the Nth write or fsync, driving
// the partial-append rollback and sticky-poison paths that real disks
// only exercise when they are dying.
type segmentFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// openSegmentFile wraps a freshly created segment file. Production
// leaves it as the identity; tests override it to inject faults.
var openSegmentFile = func(f *os.File) segmentFile { return f }

// Log is one shard's append log, safe for concurrent use. Open it with
// Open, append with Append, and bracket checkpoints with Rotate +
// RemoveBefore.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       segmentFile
	seg     uint64
	size    int64
	dirty   bool
	closed  bool
	syncErr error // first background fsync failure, surfaced on the next Append/Sync

	stop chan struct{}
	done chan struct{}

	appends atomic.Int64
	syncs   atomic.Int64
	bytes   atomic.Int64
}

// Open opens dir for appending, creating it if needed. If a previous
// segment exists its torn tail (the signature of a crash mid-append) is
// truncated away first, and appends then start in a fresh segment — so
// an Open after replay never interleaves new records with a dropped
// partial one. Mid-log corruption in the last segment fails with
// ErrCorrupt.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if err := repairTail(segPath(dir, last)); err != nil {
			return nil, err
		}
		next = last + 1
	}
	f, err := os.OpenFile(segPath(dir, next), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, f: openSegmentFile(f), seg: next}
	if opts.FsyncEvery > 0 {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.commit(opts.FsyncEvery, l.stop, l.done)
	}
	return l, nil
}

// commit is the group-commit loop: one fsync per interval covers every
// append since the last one. The channels are passed in because Close
// nils l.stop under the lock to hand shutdown to exactly one closer.
func (l *Log) commit(every time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			l.Sync()
		}
	}
}

// Append frames and writes one record. With FsyncEvery 0 the record is
// fsynced before Append returns; otherwise it is committed by the next
// group-commit tick (call Sync to force it). The payload is written
// with a single write syscall, so an acked record survives a process
// crash even before its fsync.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record %d bytes exceeds max %d", len(payload), maxRecord)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.syncErr != nil {
		return fmt.Errorf("wal: background sync: %w", l.syncErr)
	}
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame is only recoverable while it is the segment's
		// tail: cut it back off (and reseek) so a later append cannot
		// land after it and turn a torn tail into mid-segment
		// corruption. If even that fails, poison the log — every further
		// append reports the failure instead of corrupting the segment.
		if terr := l.truncateTailLocked(); terr != nil && l.syncErr == nil {
			l.syncErr = fmt.Errorf("partial append not rolled back: %v (write: %v)", terr, err)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.appends.Add(1)
	l.bytes.Add(int64(len(frame)))
	if l.opts.FsyncEvery == 0 {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs.Add(1)
	} else {
		l.dirty = true
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// truncateTailLocked rolls the active segment back to the last fully
// written frame after a failed append: truncate to the known-good size
// and reseek so the next write lands there rather than beyond a hole.
func (l *Log) truncateTailLocked() error {
	if err := l.f.Truncate(l.size); err != nil {
		return err
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Sync forces an fsync of the active segment if it has unsynced
// appends. Safe to call concurrently with Append.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil || !l.dirty {
		return l.syncErr
	}
	if err := l.f.Sync(); err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// Rotate syncs and closes the active segment and starts the next one,
// returning the new segment's index — the first segment a replay after
// this point must read. Checkpoints call it under the shard lock so the
// rotation point is a consistent cut of the insert stream.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seg, nil
}

func (l *Log) rotateLocked() error {
	if l.dirty {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.dirty = false
		l.syncs.Add(1)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	next := l.seg + 1
	f, err := os.OpenFile(segPath(l.dir, next), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.size = openSegmentFile(f), next, 0
	return nil
}

// RemoveBefore deletes every segment with index < seg — the truncation
// half of a checkpoint, safe at any point because the manifest already
// directs replay to start at seg. The active segment is never removed.
func (l *Log) RemoveBefore(seg uint64) error {
	l.mu.Lock()
	active := l.seg
	l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var first error
	for _, s := range segs {
		if s >= seg || s == active {
			continue
		}
		if err := os.Remove(segPath(l.dir, s)); err != nil && first == nil {
			first = fmt.Errorf("wal: remove segment %d: %w", s, err)
		}
	}
	return first
}

// NextSegment reports the segment index a future Open of dir would
// start appending into: one past the highest existing segment, or 1
// for a missing or empty directory. Replication bootstrap uses it to
// point a freshly written manifest's ShardStart at segments that do
// not exist yet, so replay after the shipped snapshot reads nothing
// stale.
func NextSegment(dir string) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 1, nil
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	if len(segs) == 0 {
		return 1, nil
	}
	return segs[len(segs)-1] + 1, nil
}

// Segment returns the active segment's index.
func (l *Log) Segment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Stats returns the lifetime append/sync/byte counters.
func (l *Log) Stats() Stats {
	return Stats{Appends: l.appends.Load(), Syncs: l.syncs.Load(), Bytes: l.bytes.Load()}
}

// Close stops the group-commit loop, fsyncs any unsynced appends and
// closes the active segment. Safe to call more than once, including
// concurrently: taking l.stop under the lock hands the channel to
// exactly one closer.
func (l *Log) Close() error {
	l.mu.Lock()
	stop := l.stop
	l.stop = nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.f = nil
	return err
}

// ---------------------------------------------------------------------
// reading

// Reader iterates the records of a log directory in append order,
// starting at a given segment. A torn tail at the end of the final
// segment is dropped (counted by Dropped), any other integrity failure
// returns ErrCorrupt.
type Reader struct {
	dir     string
	segs    []uint64
	idx     int    // next segment in segs to load
	buf     []byte // current segment contents
	off     int
	last    bool // buf is the final segment
	dropped int
	done    bool
}

// OpenReader opens dir for replay from segment start onward. A missing
// or empty directory yields a reader that is immediately exhausted —
// WAL-less startup is not an error.
func OpenReader(dir string, start uint64) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &Reader{done: true}, nil
		}
		return nil, err
	}
	keep := segs[:0]
	for _, s := range segs {
		if s >= start {
			keep = append(keep, s)
		}
	}
	return &Reader{dir: dir, segs: keep}, nil
}

// Next returns the next record's payload, io.EOF when the log is
// exhausted (including after a dropped torn tail), or ErrCorrupt. The
// returned slice aliases the reader's segment buffer and is valid until
// the next call.
func (r *Reader) Next() ([]byte, error) {
	for {
		if r.done {
			return nil, io.EOF
		}
		if r.buf == nil || r.off >= len(r.buf) {
			if r.idx >= len(r.segs) {
				r.done = true
				return nil, io.EOF
			}
			buf, err := os.ReadFile(segPath(r.dir, r.segs[r.idx]))
			if err != nil {
				return nil, fmt.Errorf("wal: read segment %d: %w", r.segs[r.idx], err)
			}
			r.buf, r.off = buf, 0
			r.last = r.idx == len(r.segs)-1
			r.idx++
			continue
		}
		payload, n, torn, err := parseRecord(r.buf[r.off:], r.last)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d offset %d", err, r.segs[r.idx-1], r.off)
		}
		if torn {
			r.dropped++
			r.done = true
			return nil, io.EOF
		}
		r.off += n
		return payload, nil
	}
}

// Dropped reports how many torn-tail records were dropped.
func (r *Reader) Dropped() int { return r.dropped }

// Close releases the reader's segment buffer.
func (r *Reader) Close() error {
	r.buf = nil
	r.done = true
	return nil
}

// parseRecord parses one frame from buf. torn reports a record whose
// bytes stop at the end of buf when buf is the final segment — the
// crash-mid-append signature replay drops; the same shape anywhere else
// is ErrCorrupt.
func parseRecord(buf []byte, final bool) (payload []byte, n int, torn bool, err error) {
	if len(buf) < frameHeader {
		if final {
			return nil, 0, true, nil
		}
		return nil, 0, false, ErrCorrupt
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	if length > maxRecord {
		return nil, 0, false, ErrCorrupt
	}
	end := frameHeader + int(length)
	if end > len(buf) {
		if final {
			return nil, 0, true, nil
		}
		return nil, 0, false, ErrCorrupt
	}
	payload = buf[frameHeader:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		// A bad CRC on the very last record of the final segment is a
		// torn payload write; earlier it is corruption.
		if final && end == len(buf) {
			return nil, 0, true, nil
		}
		return nil, 0, false, ErrCorrupt
	}
	return payload, end, false, nil
}

// repairTail truncates a torn record off the end of the segment at
// path, so future appends and replays see a clean log. Corruption that
// is not a torn tail returns ErrCorrupt.
func repairTail(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := 0
	for off < len(buf) {
		_, n, torn, err := parseRecord(buf[off:], true)
		if err != nil {
			return fmt.Errorf("%w: %s offset %d", err, filepath.Base(path), off)
		}
		if torn {
			break
		}
		off += n
	}
	if off == len(buf) {
		return nil
	}
	if err := os.Truncate(path, int64(off)); err != nil {
		return fmt.Errorf("wal: repair %s: %w", filepath.Base(path), err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: repair %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: repair %s: %w", filepath.Base(path), err)
	}
	return nil
}

// ---------------------------------------------------------------------
// segment files

// segPath names segment idx inside dir: 16 zero-padded decimal digits
// keep lexical and numeric order identical.
func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d.wal", idx))
}

// listSegments returns the segment indices present in dir, ascending.
// Non-segment files are ignored.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || len(name) != 16+4 || name[16:] != ".wal" {
			continue
		}
		var idx uint64
		ok := true
		for _, c := range name[:16] {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			idx = idx*10 + uint64(c-'0')
		}
		if !ok || idx == 0 {
			continue
		}
		segs = append(segs, idx)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// syncDir fsyncs a directory so created/renamed files in it survive a
// crash. Filesystems that refuse to fsync directories (EINVAL/ENOTSUP)
// are excused — there is nothing further to do.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
