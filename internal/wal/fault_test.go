package wal

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// faultFile wraps an *os.File behind the segmentFile seam and fails
// selected operations: the Nth write lands only half the frame before
// erroring (a torn write), the Nth fsync reports an I/O error, and
// Truncate can be made to fail so the rollback path itself breaks.
// Counters are shared across segments via the injector, so "the 3rd
// write" means the 3rd write through the log, not per segment.
type faultFile struct {
	f   *os.File
	inj *faultInjector
}

type faultInjector struct {
	mu         sync.Mutex
	writes     int
	syncs      int
	failWrite  int  // fail the Nth write (1-based); 0 = never
	failSync   int  // fail the Nth fsync (1-based); 0 = never
	breakTrunc bool // make Truncate fail too (rollback impossible)
}

var errInjected = errors.New("injected I/O error")

// install swaps openSegmentFile for the injector's wrapper and returns
// a restore func for defer.
func (inj *faultInjector) install() func() {
	prev := openSegmentFile
	openSegmentFile = func(f *os.File) segmentFile { return &faultFile{f: f, inj: inj} }
	return func() { openSegmentFile = prev }
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.inj.mu.Lock()
	ff.inj.writes++
	fail := ff.inj.failWrite != 0 && ff.inj.writes == ff.inj.failWrite
	ff.inj.mu.Unlock()
	if fail {
		// A torn write: half the frame reaches the disk, then the
		// device errors. This is the shape a crash or dying disk
		// leaves behind.
		n, _ := ff.f.Write(p[:len(p)/2])
		return n, errInjected
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.inj.mu.Lock()
	ff.inj.syncs++
	fail := ff.inj.failSync != 0 && ff.inj.syncs == ff.inj.failSync
	ff.inj.mu.Unlock()
	if fail {
		return errInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	ff.inj.mu.Lock()
	broken := ff.inj.breakTrunc
	ff.inj.mu.Unlock()
	if broken {
		return errInjected
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// TestFaultPartialAppendRolledBack: when a write lands only part of a
// frame before erroring, the log truncates the torn tail away and keeps
// accepting appends — and replay sees exactly the acknowledged records,
// with nothing dropped and no torn frame surfaced.
func TestFaultPartialAppendRolledBack(t *testing.T) {
	inj := &faultInjector{failWrite: 3}
	defer inj.install()()

	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	for i := 0; i < 6; i++ {
		rec := []byte(strings.Repeat("x", 20+i))
		err := l.Append(rec)
		if i == 2 {
			if !errors.Is(err, errInjected) {
				t.Fatalf("append %d: err = %v, want injected fault", i, err)
			}
			continue // not acknowledged: must not appear on replay
		}
		if err != nil {
			t.Fatalf("append %d after rollback: %v", i, err)
		}
		acked = append(acked, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, dropped := readAll(t, dir, 1)
	if dropped != 0 {
		t.Fatalf("replay dropped %d records: rollback left a torn frame behind", dropped)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want the %d acknowledged ones", len(got), len(acked))
	}
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestFaultRollbackFailurePoisons: when the write fails AND the
// truncate that would roll it back fails, the log poisons itself —
// every later append reports the sticky error instead of writing after
// the hole and turning a torn tail into mid-segment corruption. The
// acknowledged prefix still replays, with the torn frame dropped as a
// tail, never surfaced as a record.
func TestFaultRollbackFailurePoisons(t *testing.T) {
	inj := &faultInjector{failWrite: 3, breakTrunc: true}
	defer inj.install()()

	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	for i := 0; i < 2; i++ {
		rec := []byte(strings.Repeat("a", 32))
		if err := l.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, rec)
	}
	if err := l.Append([]byte(strings.Repeat("b", 32))); !errors.Is(err, errInjected) {
		t.Fatalf("torn append err = %v, want injected fault", err)
	}
	// Sticky poison: every subsequent append refuses.
	for i := 0; i < 3; i++ {
		err := l.Append([]byte("after"))
		if err == nil || !strings.Contains(err.Error(), "background sync") {
			t.Fatalf("append after failed rollback: err = %v, want sticky poison", err)
		}
	}
	l.Close()

	// Replay: the acked prefix, the half-written frame dropped as a
	// torn tail — never handed to the caller as a record.
	got, dropped := readAll(t, dir, 1)
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(got), len(acked))
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want the one torn frame", dropped)
	}
	for _, p := range got {
		if strings.Contains(string(p), "b") || strings.Contains(string(p), "after") {
			t.Fatalf("unacknowledged record surfaced on replay: %q", p)
		}
	}
}

// TestFaultSyncErrorSurfaces: with FsyncEvery 0 every append fsyncs
// inline, so an fsync fault fails that append; the log is not poisoned
// (the frame itself is intact) and later appends succeed. Replay still
// returns every intact frame.
func TestFaultSyncErrorSurfaces(t *testing.T) {
	inj := &faultInjector{failSync: 2}
	defer inj.install()()

	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("one")); err != nil {
		t.Fatalf("append 0: %v", err)
	}
	if err := l.Append([]byte("two")); !errors.Is(err, errInjected) {
		t.Fatalf("append with failing fsync: err = %v, want injected fault", err)
	}
	if err := l.Append([]byte("three")); err != nil {
		t.Fatalf("append after fsync fault: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, dropped := readAll(t, dir, 1)
	// "two" hit the disk (only its fsync failed), so replay may return
	// it — the contract is on acknowledged records, which must all be
	// there, in order, with nothing torn.
	if dropped != 0 {
		t.Fatalf("dropped %d records", dropped)
	}
	want := []string{"one", "two", "three"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFaultGroupCommitSyncPoisons: under group commit a background
// fsync failure is detected at the next tick and surfaces as a sticky
// error on the next Append — the log refuses to keep acknowledging
// writes whose durability it can no longer promise.
func TestFaultGroupCommitSyncPoisons(t *testing.T) {
	inj := &faultInjector{failSync: 1}
	defer inj.install()()

	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("rec")); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := l.Append([]byte("rec"))
		if err != nil {
			if !strings.Contains(err.Error(), "background sync") {
				t.Fatalf("err = %v, want sticky background-sync poison", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background fsync fault never surfaced on Append")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultTornWriteThenCrashReplay simulates the crash path: the torn
// write happens, the process dies before any rollback is observable to
// a new incarnation (we just reopen the directory), and Open's tail
// repair must drop the partial frame so the new log never interleaves
// fresh records behind it.
func TestFaultTornWriteThenCrashReplay(t *testing.T) {
	dir := t.TempDir()
	func() {
		inj := &faultInjector{failWrite: 2, breakTrunc: true}
		defer inj.install()()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]byte("durable")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]byte("torn-away")); !errors.Is(err, errInjected) {
			t.Fatalf("err = %v, want injected fault", err)
		}
		// Crash: no Close, no rollback. The half frame stays on disk.
	}()

	// A fresh Open (production openSegmentFile) repairs the tail.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if err := l.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(t, dir, 1)
	want := []string{"durable", "after-crash"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records %q, want %v", len(got), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}
