package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// readAll drains a reader into a slice of copied payloads.
func readAll(t *testing.T, dir string, start uint64) ([][]byte, int) {
	t.Helper()
	r, err := OpenReader(dir, start)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	var out [][]byte
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, r.Dropped()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, append([]byte(nil), p...))
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, dropped := readAll(t, dir, 1)
	if dropped != 0 {
		t.Fatalf("dropped %d records from a clean log", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	st := l.Stats()
	if st.Appends != 100 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSegmentRotationAndStart(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segment() < 3 {
		t.Fatalf("expected several segments, active is %d", l.Segment())
	}
	// Explicit rotation marks a checkpoint boundary; records appended
	// after it are exactly what a replay from the boundary sees.
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	all, _ := readAll(t, dir, 1)
	if len(all) != 57 {
		t.Fatalf("full replay saw %d records, want 57", len(all))
	}
	tail, _ := readAll(t, dir, boundary)
	if len(tail) != 7 {
		t.Fatalf("replay from boundary saw %d records, want 7", len(tail))
	}
	if string(tail[0]) != "post-0" {
		t.Fatalf("first post-boundary record = %q", tail[0])
	}
	if err := l.RemoveBefore(boundary); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s < boundary {
			t.Fatalf("segment %d survived RemoveBefore(%d)", s, boundary)
		}
	}
	again, _ := readAll(t, dir, boundary)
	if len(again) != 7 {
		t.Fatalf("replay after truncation saw %d records, want 7", len(again))
	}
}

// TestTornTailDropped simulates a crash mid-append: the final record's
// bytes stop short. Replay must drop exactly that record and report it.
func TestTornTailDropped(t *testing.T) {
	for _, cut := range []struct {
		name string
		trim int
	}{
		{"partial_payload", 3},
		{"header_only", 12}, // 10-byte payload + 8 header: leaves a bare partial header
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			seg := l.Segment()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := segPath(dir, seg)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-int64(cut.trim)); err != nil {
				t.Fatal(err)
			}
			got, dropped := readAll(t, dir, 1)
			if len(got) != 9 {
				t.Fatalf("replayed %d records, want 9", len(got))
			}
			if dropped != 1 {
				t.Fatalf("dropped = %d, want 1", dropped)
			}
			// Re-opening for append repairs the tail, so the log stays
			// readable after new records land.
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			if err := l2.Append([]byte("after-crash")); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			got, dropped = readAll(t, dir, 1)
			if len(got) != 10 || dropped != 0 {
				t.Fatalf("after repair: %d records (%d dropped), want 10 (0)", len(got), dropped)
			}
			if string(got[9]) != "after-crash" {
				t.Fatalf("last record = %q", got[9])
			}
		})
	}
}

// TestCorruptMidLogFatal flips payload bytes in the middle of the log:
// that is bit rot, not a torn write, and replay must refuse loudly.
func TestCorruptMidLogFatal(t *testing.T) {
	for _, where := range []string{"mid_segment", "non_final_segment"} {
		t.Run(where, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{}
			if where == "non_final_segment" {
				opts.SegmentBytes = 64
			}
			l, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Corrupt a payload byte of the first record in the first
			// segment — guaranteed not at the final segment's tail.
			path := segPath(dir, segs[0])
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[frameHeader] ^= 0xFF
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := OpenReader(dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for {
				_, err := r.Next()
				if err == io.EOF {
					t.Fatalf("mid-log corruption replayed to EOF")
				}
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("error %v, want ErrCorrupt", err)
					}
					break
				}
			}
			// Open-for-append must refuse the corrupt final segment too
			// (single-segment case) rather than truncating valid data.
			if where == "mid_segment" {
				if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open over corrupt segment: %v, want ErrCorrupt", err)
				}
			}
		})
	}
}

// TestBadCRCAtExactTailDropped: a record whose bytes all made it to disk
// but whose payload was half-written (CRC mismatch at the exact end of
// the final segment) is a torn write, not corruption.
func TestBadCRCAtExactTailDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg := l.Segment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-append a frame with a wrong CRC.
	payload := []byte("torn-payload")
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload)^0xDEAD)
	copy(frame[frameHeader:], payload)
	f, err := os.OpenFile(segPath(dir, seg), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, dropped := readAll(t, dir, 1)
	if len(got) != 5 || dropped != 1 {
		t.Fatalf("replayed %d (%d dropped), want 5 (1)", len(got), dropped)
	}
}

// TestGroupCommit exercises the background committer: appends outnumber
// fsyncs, Sync forces the pending batch down, Close flushes the rest.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncEvery: time.Hour}) // tick never fires in-test
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.Append([]byte("group-commit-record")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("premature syncs: %+v", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("Sync did not group-commit: %+v", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("clean Sync fsynced anyway: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(t, dir, 1)
	if len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
}

// TestConcurrentAppend is the race-detector proof: appends from many
// goroutines with a fast background committer all land intact.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncEvery: time.Millisecond, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%03d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, dropped := readAll(t, dir, 1)
	if len(got) != writers*per || dropped != 0 {
		t.Fatalf("replayed %d (%d dropped), want %d (0)", len(got), dropped, writers*per)
	}
}

// TestOpenReaderMissingDir: WAL-less startup is an empty replay, not an
// error.
func TestOpenReaderMissingDir(t *testing.T) {
	r, err := OpenReader(filepath.Join(t.TempDir(), "nope"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want EOF", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestConcurrentClose pins the Close contract: racing closers (with a
// live group-commit loop to shut down) must both return cleanly, never
// panic on a double channel close.
func TestConcurrentClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
}
