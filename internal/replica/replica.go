// Package replica implements the follower side of WAL-shipping
// replication and the wire protocol both sides share.
//
// A primary serving process exposes GET /replicate: the response is one
// JSON header line describing the checkpoint being shipped (snapshot
// generation, fencing epoch, shard count, snapshot byte length, and the
// base LSN — the number of records the primary had shipped when the
// checkpoint's consistent cut was taken), followed by the raw snapshot
// bytes, followed by an unbounded sequence of binary frames: one record
// frame per WAL append (the exact payload the primary logged, tagged
// with its shard) interleaved with heartbeat frames carrying the
// primary's current shipped LSN.
//
// The Tailer here is the replica's pump: it connects, hands the header
// and snapshot to its Sink (which rebuilds the local model from the
// checkpoint), then applies record frames one at a time — through the
// replica's own log-before-apply path, so replica state is itself
// durable — and reconnects with jittered exponential backoff whenever
// the stream breaks. Reconnects always re-bootstrap from a fresh
// checkpoint: the stream has no resume cursor, which trades transfer
// volume for never having to reason about a half-applied tail.
//
// Fencing rides the same connection: the follower sends its own epoch
// in the X-Bayestree-Epoch request header. A primary that sees a caller
// with a NEWER epoch knows it has been superseded — it fences itself
// (persistently) and answers 409, and the Tailer reports the condition
// instead of applying frames from a stale line of succession.
package replica

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Proto is the replication wire-protocol version. A follower refuses a
// header with any other value rather than misparsing the stream.
const Proto = 1

// EpochHeader is the HTTP request header a follower sends with its
// current fencing epoch; a primary that sees a newer epoch than its own
// fences itself.
const EpochHeader = "X-Bayestree-Epoch"

// Workload names for Header.Workload, so a classification follower
// cannot silently apply a clustering primary's records (the record
// codecs differ).
const (
	// WorkloadClassify labels the classification serving workload.
	WorkloadClassify = "classify"
	// WorkloadCluster labels the clustering serving workload.
	WorkloadCluster = "cluster"
)

// Header is the JSON line that opens a /replicate response: everything
// the follower needs to rebuild from the checkpoint that follows and to
// account for the live tail after it.
type Header struct {
	// Proto is the wire-protocol version (must equal Proto).
	Proto int `json:"proto"`
	// Workload identifies the record codec: WorkloadClassify or
	// WorkloadCluster.
	Workload string `json:"workload"`
	// Generation is the manifest generation of the shipped checkpoint.
	Generation uint64 `json:"generation"`
	// Epoch is the primary's fencing epoch; the follower adopts it.
	Epoch uint64 `json:"epoch"`
	// Shards is the primary's shard count; replicated records are
	// tagged with shard indices below it.
	Shards int `json:"shards"`
	// SnapshotBytes is the exact length of the snapshot that follows
	// the header line.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BaseLSN is the primary's shipped-record count at the checkpoint's
	// consistent cut: the snapshot contains exactly the records with
	// LSN ≤ BaseLSN, and the first record frame after it is BaseLSN+1.
	BaseLSN uint64 `json:"base_lsn"`
}

// frame kind bytes on the wire.
const (
	frameRecord    byte = 'r'
	frameHeartbeat byte = 'h'
)

// maxFramePayload bounds a declared record length before allocation,
// mirroring the WAL's own record cap.
const maxFramePayload = 16 << 20

// WriteHeader writes the opening JSON header line.
func WriteHeader(w io.Writer, h Header) error {
	raw, err := json.Marshal(h)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// ReadHeader reads and validates the opening JSON header line.
func ReadHeader(r *bufio.Reader) (Header, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return Header{}, fmt.Errorf("replica: header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Header{}, fmt.Errorf("replica: header: %w", err)
	}
	if h.Proto != Proto {
		return Header{}, fmt.Errorf("replica: protocol version %d, want %d", h.Proto, Proto)
	}
	if h.Shards <= 0 || h.SnapshotBytes < 0 {
		return Header{}, fmt.Errorf("replica: malformed header %+v", h)
	}
	return h, nil
}

// WriteRecord writes one record frame: the kind byte, the shard index
// and payload length (both little-endian uint32), then the payload —
// the exact bytes the primary appended to that shard's WAL.
func WriteRecord(w io.Writer, shard int, payload []byte) error {
	var hdr [9]byte
	hdr[0] = frameRecord
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteHeartbeat writes one heartbeat frame carrying the primary's
// current shipped LSN.
func WriteHeartbeat(w io.Writer, lsn uint64) error {
	var buf [9]byte
	buf[0] = frameHeartbeat
	binary.LittleEndian.PutUint64(buf[1:9], lsn)
	_, err := w.Write(buf[:])
	return err
}

// Frame is one parsed wire frame: a record (Shard, Payload) or a
// heartbeat (LSN).
type Frame struct {
	// Kind is 'r' for a record frame, 'h' for a heartbeat.
	Kind byte
	// Shard is the record's shard index (record frames only).
	Shard int
	// LSN is the primary's shipped LSN (heartbeat frames only).
	LSN uint64
	// Payload is the WAL record bytes (record frames only).
	Payload []byte
}

// ReadFrame reads the next frame from the stream.
func ReadFrame(r io.Reader) (Frame, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return Frame{}, err
	}
	switch kind[0] {
	case frameRecord:
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return Frame{}, fmt.Errorf("replica: record frame: %w", err)
		}
		shard := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFramePayload {
			return Frame{}, fmt.Errorf("replica: record frame declares %d bytes", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Frame{}, fmt.Errorf("replica: record frame: %w", err)
		}
		return Frame{Kind: frameRecord, Shard: int(shard), Payload: payload}, nil
	case frameHeartbeat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Frame{}, fmt.Errorf("replica: heartbeat frame: %w", err)
		}
		return Frame{Kind: frameHeartbeat, LSN: binary.LittleEndian.Uint64(buf[:])}, nil
	default:
		return Frame{}, fmt.Errorf("replica: unknown frame kind 0x%02x", kind[0])
	}
}

// FormatEpoch renders an epoch for the EpochHeader request header.
func FormatEpoch(epoch uint64) string { return strconv.FormatUint(epoch, 10) }

// ErrStalePrimary reports that the primary refused to serve the stream
// because the follower's epoch is newer than its own — the primary is a
// stale resurrection of a superseded line of succession (it fenced
// itself on our probe). Test with errors.Is.
var ErrStalePrimary = errors.New("replica: primary is stale (fenced by our newer epoch)")

// Sink is what the Tailer pumps into — the replica's model layer.
// Calls are sequential: one Bootstrap per (re)connect, then Apply and
// CaughtUp in stream order until the connection breaks.
type Sink interface {
	// Bootstrap rebuilds the replica from a full checkpoint: snapshot
	// delivers exactly Header.SnapshotBytes bytes. On error the Tailer
	// drops the connection and retries with a fresh checkpoint.
	Bootstrap(h Header, snapshot io.Reader) error
	// Apply applies one shipped WAL record to the given shard, through
	// the replica's own log-before-apply path. An error drops the
	// connection (and the next bootstrap re-converges).
	Apply(shard int, payload []byte) error
	// CaughtUp reports a heartbeat: the primary had shipped lsn records
	// as of now, so a replica that has applied that many knows it is
	// current and can reset its staleness clock.
	CaughtUp(lsn uint64)
	// Connected reports tail connectivity transitions (true after a
	// successful bootstrap, false when the stream drops).
	Connected(ok bool)
}

// Options parameterise a Tailer.
type Options struct {
	// PrimaryURL is the primary's base URL (e.g. http://host:8080); the
	// Tailer appends /replicate.
	PrimaryURL string
	// Workload is the expected Header.Workload; a mismatch is refused.
	Workload string
	// Epoch returns the follower's current fencing epoch, sent with
	// every connect so a stale primary fences itself. Nil means epoch 0.
	Epoch func() uint64
	// Client is the HTTP client to dial with (nil means a dedicated
	// client with no overall timeout — the stream is unbounded).
	Client *http.Client
	// SilenceTimeout drops a connection that has delivered no frame for
	// this long — heartbeats make silence abnormal (0 means 15s).
	SilenceTimeout time.Duration
	// BackoffMin and BackoffMax bound the jittered exponential
	// reconnect backoff (0 means 100ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.SilenceTimeout <= 0 {
		o.SilenceTimeout = 15 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	return o
}

// Tailer pumps a primary's replication stream into a Sink, reconnecting
// with jittered exponential backoff until stopped.
type Tailer struct {
	sink Sink
	opts Options

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	lastErr atomic.Value // errBox: concrete error types vary per failure
}

// errBox gives lastErr a single concrete type — atomic.Value panics if
// successive Stores carry different dynamic types, and connection
// errors come in many.
type errBox struct{ err error }

// New builds a Tailer over a sink. Start it with Start (or drive it
// directly with Run) and stop it with Stop.
func New(sink Sink, opts Options) *Tailer {
	return &Tailer{sink: sink, opts: opts.withDefaults()}
}

// Start launches Run in a background goroutine with an internal
// context. Stop cancels it and waits.
func (t *Tailer) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	t.done = make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		t.Run(ctx)
	}(t.done)
}

// Stop cancels a Start-ed tailer and waits for its loop to exit. Safe
// to call multiple times, and a no-op for a tailer that never started.
func (t *Tailer) Stop() {
	t.mu.Lock()
	cancel, done := t.cancel, t.done
	t.cancel, t.done = nil, nil
	t.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// LastErr returns the most recent connection error, nil before any.
func (t *Tailer) LastErr() error {
	if b, ok := t.lastErr.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// Run drives the connect/bootstrap/apply loop until ctx is cancelled.
// Every connection failure is recorded (LastErr), reported to the sink
// (Connected(false)) and retried after a jittered exponential backoff.
func (t *Tailer) Run(ctx context.Context) {
	backoff := t.opts.BackoffMin
	for ctx.Err() == nil {
		streamed, err := t.tailOnce(ctx)
		t.sink.Connected(false)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			t.lastErr.Store(errBox{err})
		}
		if streamed {
			// A connection that got as far as applying frames earns a
			// fresh backoff; only repeated connect failures escalate.
			backoff = t.opts.BackoffMin
		}
		// Full jitter on the current backoff step keeps a fleet of
		// reconnecting replicas from stampeding a recovering primary.
		delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if backoff *= 2; backoff > t.opts.BackoffMax {
			backoff = t.opts.BackoffMax
		}
	}
}

// tailOnce runs one connection to completion: bootstrap from the
// shipped checkpoint, then apply frames until the stream breaks.
// streamed reports whether the bootstrap succeeded (for backoff reset).
func (t *Tailer) tailOnce(ctx context.Context) (streamed bool, err error) {
	// The watchdog cancels the request context — aborting any blocked
	// body read — when no frame has arrived for SilenceTimeout.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	activity := make(chan struct{}, 1)
	poke := func() {
		select {
		case activity <- struct{}{}:
		default:
		}
	}
	go func() {
		timer := time.NewTimer(t.opts.SilenceTimeout)
		defer timer.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-activity:
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(t.opts.SilenceTimeout)
			case <-timer.C:
				cancel()
				return
			}
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.opts.PrimaryURL+"/replicate", nil)
	if err != nil {
		return false, err
	}
	var epoch uint64
	if t.opts.Epoch != nil {
		epoch = t.opts.Epoch()
	}
	req.Header.Set(EpochHeader, FormatEpoch(epoch))
	resp, err := t.opts.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, ErrStalePrimary
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("replica: /replicate: %s: %s", resp.Status, string(body))
	}

	br := bufio.NewReaderSize(resp.Body, 64*1024)
	h, err := ReadHeader(br)
	if err != nil {
		return false, err
	}
	poke()
	if t.opts.Workload != "" && h.Workload != t.opts.Workload {
		return false, fmt.Errorf("replica: primary serves workload %q, want %q", h.Workload, t.opts.Workload)
	}
	if h.Epoch < epoch {
		// The primary should have fenced itself on our header; refuse
		// its stream regardless.
		return false, ErrStalePrimary
	}

	snap := io.LimitReader(br, h.SnapshotBytes)
	if err := t.sink.Bootstrap(h, snap); err != nil {
		return false, fmt.Errorf("replica: bootstrap: %w", err)
	}
	// Stay frame-aligned even if the sink under-read the snapshot.
	if _, err := io.Copy(io.Discard, snap); err != nil {
		return true, err
	}
	t.sink.Connected(true)
	poke()

	for {
		f, err := ReadFrame(br)
		if err != nil {
			return true, err
		}
		poke()
		switch f.Kind {
		case frameRecord:
			if f.Shard < 0 || f.Shard >= h.Shards {
				return true, fmt.Errorf("replica: record for shard %d of %d", f.Shard, h.Shards)
			}
			if err := t.sink.Apply(f.Shard, f.Payload); err != nil {
				return true, fmt.Errorf("replica: apply: %w", err)
			}
		case frameHeartbeat:
			t.sink.CaughtUp(f.LSN)
		}
	}
}
