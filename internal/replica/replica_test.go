package replica

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestWireRoundTrip: header, snapshot bytes, record frames, and
// heartbeats survive an encode/decode cycle byte-for-byte.
func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Header{
		Proto:         Proto,
		Workload:      WorkloadClassify,
		Generation:    3,
		Epoch:         2,
		Shards:        4,
		SnapshotBytes: 5,
		BaseLSN:       9,
	}
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("snap!")
	if err := WriteRecord(&buf, 2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeartbeat(&buf, 42); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&buf)
	got, err := ReadHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	snap := make([]byte, got.SnapshotBytes)
	if _, err := io.ReadFull(r, snap); err != nil {
		t.Fatal(err)
	}
	if string(snap) != "snap!" {
		t.Fatalf("snapshot = %q", snap)
	}
	f, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != frameRecord || f.Shard != 2 || string(f.Payload) != "payload" {
		t.Fatalf("record frame = %+v", f)
	}
	f, err = ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != frameHeartbeat || f.LSN != 42 {
		t.Fatalf("heartbeat frame = %+v", f)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}

// TestReadHeaderRejects: protocol mismatches and malformed headers are
// errors, not silent misinterpretation of the byte stream that follows.
func TestReadHeaderRejects(t *testing.T) {
	cases := []string{
		`{"proto":99,"workload":"classify","generation":1,"shards":1,"snapshot_bytes":0,"base_lsn":0}` + "\n",
		`{"proto":1,"workload":"classify","generation":1,"shards":0,"snapshot_bytes":0,"base_lsn":0}` + "\n",
		`{"proto":1,"workload":"classify","generation":1,"shards":1,"snapshot_bytes":-4,"base_lsn":0}` + "\n",
		"not json\n",
	}
	for i, raw := range cases {
		if _, err := ReadHeader(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Fatalf("case %d: bad header accepted", i)
		}
	}
}

// TestReadFrameRejectsOversize: a frame claiming more than the payload
// cap is refused before any allocation of that size.
func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(frameRecord)
	buf.Write([]byte{0, 0, 0, 0})             // shard 0
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}
