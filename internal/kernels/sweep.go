package kernels

import "math"

// This file is the vectorized-descent companion of frozen.go: where a
// FrozenKernel evaluates one (query, centre) pair at a time through an
// interface call, a Sweeper evaluates one query against a whole
// contiguous block of centres laid out as a flat float64 slice — the
// structure-of-arrays leaf layout of internal/core — in a single loop
// with no per-centre pointer dereference or dynamic dispatch. Every
// sweep reproduces the per-row arithmetic of the corresponding
// FrozenKernel method operation for operation, so a swept density is
// digit-identical to the pointer-path density.

// Sweeper is implemented by frozen kernels that can evaluate a query
// against a flat block of kernel centres in one pass. centers holds
// count rows of dim contiguous float64s; out receives count log
// densities, each bitwise equal to LogDensityObs(x, row, obs).
type Sweeper interface {
	SweepLogDensityObs(x, centers []float64, count, dim int, obs []int, out []float64)
}

// SweepLogDensityObs implements Sweeper for the frozen Gaussian kernel,
// replicating frozenGaussianKernel.LogDensity / LogDensityObs per row.
func (f frozenGaussianKernel) SweepLogDensityObs(x, centers []float64, count, dim int, obs []int, out []float64) {
	if obs == nil {
		inv := f.invVar
		for j := 0; j < count; j++ {
			row := centers[j*dim : j*dim+dim]
			var quad float64
			for i, c := range row {
				d := x[i] - c
				quad += d * d * inv[i]
			}
			out[j] = f.logNorm - 0.5*quad
		}
		return
	}
	// The marginal's log-determinant depends only on the bandwidths, so
	// it is accumulated once — the same additions in the same order as
	// the per-row path, hence the same bits.
	var logDet float64
	for _, i := range obs {
		logDet += f.logVar[i]
	}
	base := float64(len(obs)) * log2Pi
	for j := 0; j < count; j++ {
		row := centers[j*dim : j*dim+dim]
		var quad float64
		for _, i := range obs {
			d := x[i] - row[i]
			quad += d * d * f.invVar[i]
		}
		out[j] = -0.5 * (base + logDet + quad)
	}
}

// SweepLogDensityObs implements Sweeper for the frozen Epanechnikov
// kernel, replicating frozenEpanechnikov.LogDensity / LogDensityObs per
// row (including the −Inf early-out outside the kernel's support).
func (f frozenEpanechnikov) SweepLogDensityObs(x, centers []float64, count, dim int, obs []int, out []float64) {
	if obs == nil {
	rows:
		for j := 0; j < count; j++ {
			row := centers[j*dim : j*dim+dim]
			logp := f.sumLQ
			for i, c := range row {
				u := (x[i] - c) * f.invS[i]
				if u <= -1 || u >= 1 {
					out[j] = math.Inf(-1)
					continue rows
				}
				logp += math.Log1p(-u * u)
			}
			out[j] = logp
		}
		return
	}
obsRows:
	for j := 0; j < count; j++ {
		row := centers[j*dim : j*dim+dim]
		var logp float64
		for _, i := range obs {
			u := (x[i] - row[i]) * f.invS[i]
			if u <= -1 || u >= 1 {
				out[j] = math.Inf(-1)
				continue obsRows
			}
			logp += f.logQ[i] + math.Log1p(-u*u)
		}
		out[j] = logp
	}
}

// SweepFrozenLogPDFObs evaluates a query against a flat block of frozen
// diagonal Gaussians — count rows of means/invVar/logVar (dim values
// each) plus one logNorm per row — writing count log densities into
// out. Row j is bitwise equal to stats.FrozenGaussian.LogPDFObs for the
// Gaussian those row constants came from; inner-node entries of a Bayes
// tree are always Gaussian regardless of the leaf kernel, so this one
// sweep serves every inner refinement.
func SweepFrozenLogPDFObs(x, means, invVar, logVar, logNorm []float64, count, dim int, obs []int, out []float64) {
	if obs == nil {
		for j := 0; j < count; j++ {
			base := j * dim
			row := means[base : base+dim]
			var quad float64
			for i, m := range row {
				d := x[i] - m
				quad += d * d * invVar[base+i]
			}
			out[j] = logNorm[j] - 0.5*quad
		}
		return
	}
	for j := 0; j < count; j++ {
		base := j * dim
		var quad, logDet float64
		for _, i := range obs {
			d := x[i] - means[base+i]
			quad += d * d * invVar[base+i]
			logDet += logVar[base+i]
		}
		out[j] = -0.5 * (float64(len(obs))*log2Pi + logDet + quad)
	}
}
