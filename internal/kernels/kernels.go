// Package kernels provides the kernel density estimators stored at the
// Bayes tree leaf level (Section 2.1 of the paper). A kernel is an
// influence function centred at a training object; the class-conditional
// density of a query is the average kernel influence over all objects of
// the class.
//
// The paper uses the Gaussian kernel throughout and names the Epanechnikov
// kernel as a future-work alternative (Section 4.1); both are implemented
// here behind a common interface so the Bayes tree can swap them.
package kernels

import (
	"math"

	"bayestree/internal/stats"
)

// Kernel evaluates the density contribution of a single training object.
type Kernel interface {
	// LogDensity returns the log of the kernel density at x for a kernel
	// centred at center with per-dimension bandwidths h (standard
	// deviations). It must integrate to one over x.
	LogDensity(x, center, h []float64) float64
	// LogDensityObs returns the log marginal kernel density restricted
	// to the observed dimensions obs (nil = all dimensions) — the
	// missing-value support of Section 4.2. Product kernels marginalise
	// by dropping dimensions.
	LogDensityObs(x, center, h []float64, obs []int) float64
	// Name identifies the kernel in reports and flags.
	Name() string
}

// Gaussian is the Gaussian product kernel
//
//	K(x) = Π_d (2π h_d²)^(−1/2) exp(−(x_d−c_d)²/(2 h_d²)),
//
// i.e. a diagonal normal centred at the object — exactly the kernel used in
// the paper's consistent model hierarchy, which is what lets kernels and
// cluster-feature Gaussians mix in one frontier.
type Gaussian struct{}

// Name implements Kernel.
func (Gaussian) Name() string { return "gaussian" }

const log2Pi = 1.8378770664093453

// LogDensity implements Kernel.
func (Gaussian) LogDensity(x, center, h []float64) float64 {
	var quad, logDet float64
	for i := range x {
		hv := h[i]
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		v := hv * hv
		d := x[i] - center[i]
		quad += d * d / v
		logDet += math.Log(v)
	}
	return -0.5 * (float64(len(x))*log2Pi + logDet + quad)
}

// LogDensityObs implements Kernel.
func (g Gaussian) LogDensityObs(x, center, h []float64, obs []int) float64 {
	if obs == nil {
		return g.LogDensity(x, center, h)
	}
	var quad, logDet float64
	for _, i := range obs {
		hv := h[i]
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		v := hv * hv
		d := x[i] - center[i]
		quad += d * d / v
		logDet += math.Log(v)
	}
	return -0.5 * (float64(len(obs))*log2Pi + logDet + quad)
}

// Variance returns the kernel's covariance diagonal h², letting the tree
// treat a Gaussian kernel exactly like a tiny cluster-feature Gaussian.
func (Gaussian) Variance(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, hv := range h {
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		out[i] = hv * hv
	}
	return out
}

// Epanechnikov is the product Epanechnikov kernel
//
//	K(u) = Π_d (3/4)(1−u_d²) for |u_d| ≤ 1, u_d = (x_d−c_d)/(√5 h_d),
//
// scaled so its standard deviation per dimension is h_d (the classical √5
// rescaling that makes bandwidths comparable with the Gaussian kernel).
// Outside the support the density is zero, so the log density is −Inf.
type Epanechnikov struct{}

// Name implements Kernel.
func (Epanechnikov) Name() string { return "epanechnikov" }

// LogDensity implements Kernel.
func (Epanechnikov) LogDensity(x, center, h []float64) float64 {
	var logp float64
	for i := range x {
		hv := h[i]
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		s := hv * math.Sqrt(5)
		u := (x[i] - center[i]) / s
		if u <= -1 || u >= 1 {
			return math.Inf(-1)
		}
		logp += math.Log(0.75 * (1 - u*u) / s)
	}
	return logp
}

// LogDensityObs implements Kernel.
func (e Epanechnikov) LogDensityObs(x, center, h []float64, obs []int) float64 {
	if obs == nil {
		return e.LogDensity(x, center, h)
	}
	var logp float64
	for _, i := range obs {
		hv := h[i]
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		s := hv * math.Sqrt(5)
		u := (x[i] - center[i]) / s
		if u <= -1 || u >= 1 {
			return math.Inf(-1)
		}
		logp += math.Log(0.75 * (1 - u*u) / s)
	}
	return logp
}

// ByName returns the kernel registered under name ("gaussian" or
// "epanechnikov") and whether the name was known.
func ByName(name string) (Kernel, bool) {
	switch name {
	case "gaussian", "":
		return Gaussian{}, true
	case "epanechnikov":
		return Epanechnikov{}, true
	}
	return nil, false
}
