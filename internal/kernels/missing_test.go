package kernels

import (
	"math"
	"testing"
)

// Masked evaluation must equal full evaluation on the reduced vectors —
// exact marginalisation for product kernels.
func TestLogDensityObsMatchesReducedVectors(t *testing.T) {
	x := []float64{0.3, math.NaN(), 0.9}
	c := []float64{0.2, 0.5, 0.8}
	h := []float64{0.1, 0.2, 0.3}
	obs := []int{0, 2}
	xr := []float64{0.3, 0.9}
	cr := []float64{0.2, 0.8}
	hr := []float64{0.1, 0.3}
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		got := k.LogDensityObs(x, c, h, obs)
		want := k.LogDensity(xr, cr, hr)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: masked %v, reduced %v", k.Name(), got, want)
		}
	}
}

func TestLogDensityObsNilIsFull(t *testing.T) {
	x := []float64{0.4, 0.6}
	c := []float64{0.5, 0.5}
	h := []float64{0.2, 0.2}
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		if got, want := k.LogDensityObs(x, c, h, nil), k.LogDensity(x, c, h); got != want {
			t.Errorf("%s: nil obs %v != full %v", k.Name(), got, want)
		}
	}
}

func TestEpanechnikovObsSupport(t *testing.T) {
	// The observed dim is outside the support; the masked density must be
	// -Inf regardless of the (masked) offending other dim.
	x := []float64{5, math.NaN()}
	c := []float64{0, 0}
	h := []float64{1, 1}
	if got := (Epanechnikov{}).LogDensityObs(x, c, h, []int{0}); !math.IsInf(got, -1) {
		t.Errorf("outside-support masked density %v, want -Inf", got)
	}
	// Masked-away violation does not matter.
	x = []float64{0.1, 99}
	if got := (Epanechnikov{}).LogDensityObs(x, c, h, []int{0}); math.IsInf(got, -1) {
		t.Errorf("masked violation leaked into density")
	}
}

func TestLogDensityObsZeroBandwidth(t *testing.T) {
	x := []float64{0.1, 0.2}
	c := []float64{0.1, 0.2}
	h := []float64{0, 0}
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		if got := k.LogDensityObs(x, c, h, []int{1}); math.IsNaN(got) {
			t.Errorf("%s: NaN for zero bandwidth", k.Name())
		}
	}
}

// Empty observation set: the empty product, log density 0.
func TestLogDensityObsEmpty(t *testing.T) {
	x := []float64{math.NaN()}
	c := []float64{0}
	h := []float64{1}
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		if got := k.LogDensityObs(x, c, h, []int{}); got != 0 {
			t.Errorf("%s: empty obs log density %v, want 0", k.Name(), got)
		}
	}
}
