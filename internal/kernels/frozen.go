package kernels

import (
	"math"

	"bayestree/internal/stats"
)

// The leaf kernels of a Bayes tree share one data-independent bandwidth
// vector per tree (Section 2.1), yet the generic Kernel interface
// recomputes every bandwidth-derived factor — h², 1/h², ln h², the √5
// Epanechnikov rescaling — for every training object of every leaf read,
// for every query. A FrozenKernel precomputes those factors once per
// (kernel, bandwidth) pair; the anytime cursor freezes the kernel when the
// per-tree query constants are built, so the leaf-level hot loop performs
// only subtract-multiply-accumulate work.

// FrozenKernel evaluates a kernel whose bandwidth-derived constants are
// precomputed.
type FrozenKernel interface {
	// LogDensity returns the log kernel density at x for a kernel centred
	// at center, equal to the source kernel's LogDensity with the frozen
	// bandwidths.
	LogDensity(x, center []float64) float64
	// LogDensityObs is the marginal restricted to the observed dimensions
	// (nil = all).
	LogDensityObs(x, center []float64, obs []int) float64
}

// Freezer is implemented by kernels that can precompute their
// bandwidth-derived factors.
type Freezer interface {
	FreezeBandwidth(h []float64) FrozenKernel
}

// FreezeKernel returns a frozen evaluator for the kernel at bandwidths h.
// Kernels that do not implement Freezer are wrapped in a pass-through
// adapter, so callers can freeze unconditionally.
func FreezeKernel(k Kernel, h []float64) FrozenKernel {
	if f, ok := k.(Freezer); ok {
		return f.FreezeBandwidth(h)
	}
	return passthroughKernel{k: k, h: h}
}

type passthroughKernel struct {
	k Kernel
	h []float64
}

func (p passthroughKernel) LogDensity(x, center []float64) float64 {
	return p.k.LogDensity(x, center, p.h)
}

func (p passthroughKernel) LogDensityObs(x, center []float64, obs []int) float64 {
	return p.k.LogDensityObs(x, center, p.h, obs)
}

// frozenGaussianKernel holds 1/h², ln h² and the full-dimensional
// log-normaliser −½(D·ln 2π + Σ ln h²).
type frozenGaussianKernel struct {
	invVar  []float64
	logVar  []float64
	logNorm float64
}

// FreezeBandwidth implements Freezer.
func (Gaussian) FreezeBandwidth(h []float64) FrozenKernel {
	f := frozenGaussianKernel{
		invVar: make([]float64, len(h)),
		logVar: make([]float64, len(h)),
	}
	var logDet float64
	for i, hv := range h {
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		v := hv * hv
		f.invVar[i] = 1 / v
		lv := math.Log(v)
		f.logVar[i] = lv
		logDet += lv
	}
	f.logNorm = -0.5 * (float64(len(h))*log2Pi + logDet)
	return f
}

func (f frozenGaussianKernel) LogDensity(x, center []float64) float64 {
	var quad float64
	inv := f.invVar
	for i, c := range center {
		d := x[i] - c
		quad += d * d * inv[i]
	}
	return f.logNorm - 0.5*quad
}

func (f frozenGaussianKernel) LogDensityObs(x, center []float64, obs []int) float64 {
	if obs == nil {
		return f.LogDensity(x, center)
	}
	var quad, logDet float64
	for _, i := range obs {
		d := x[i] - center[i]
		quad += d * d * f.invVar[i]
		logDet += f.logVar[i]
	}
	return -0.5 * (float64(len(obs))*log2Pi + logDet + quad)
}

// frozenEpanechnikov holds 1/(√5·h) and Σ ln(0.75/(√5·h)); only the
// data-dependent ln(1−u²) remains per dimension at query time.
type frozenEpanechnikov struct {
	invS  []float64
	logQ  []float64 // per-dim ln(0.75/s), for marginals
	sumLQ float64
}

// FreezeBandwidth implements Freezer.
func (Epanechnikov) FreezeBandwidth(h []float64) FrozenKernel {
	f := frozenEpanechnikov{
		invS: make([]float64, len(h)),
		logQ: make([]float64, len(h)),
	}
	for i, hv := range h {
		if hv <= 0 {
			hv = math.Sqrt(stats.VarianceFloor)
		}
		s := hv * math.Sqrt(5)
		f.invS[i] = 1 / s
		lq := math.Log(0.75 / s)
		f.logQ[i] = lq
		f.sumLQ += lq
	}
	return f
}

func (f frozenEpanechnikov) LogDensity(x, center []float64) float64 {
	logp := f.sumLQ
	for i, c := range center {
		u := (x[i] - c) * f.invS[i]
		if u <= -1 || u >= 1 {
			return math.Inf(-1)
		}
		logp += math.Log1p(-u * u)
	}
	return logp
}

func (f frozenEpanechnikov) LogDensityObs(x, center []float64, obs []int) float64 {
	if obs == nil {
		return f.LogDensity(x, center)
	}
	var logp float64
	for _, i := range obs {
		u := (x[i] - center[i]) * f.invS[i]
		if u <= -1 || u >= 1 {
			return math.Inf(-1)
		}
		logp += f.logQ[i] + math.Log1p(-u*u)
	}
	return logp
}
