package kernels

import (
	"math"
	"testing"
)

func TestGaussianKernelMatchesNormalPDF(t *testing.T) {
	k := Gaussian{}
	// 1D kernel at center 0 with h=2 is N(0, 4).
	x, c, h := []float64{1.5}, []float64{0}, []float64{2}
	want := math.Exp(-0.5*1.5*1.5/4) / math.Sqrt(2*math.Pi*4)
	got := math.Exp(k.LogDensity(x, c, h))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("gaussian kernel = %v, want %v", got, want)
	}
}

// Numeric integration: both kernels must integrate to 1 in 1D.
func TestKernelsIntegrateToOne(t *testing.T) {
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		c, h := []float64{0.5}, []float64{0.3}
		var integral float64
		const step = 0.001
		for x := -10.0; x < 10; x += step {
			ld := k.LogDensity([]float64{x}, c, h)
			if !math.IsInf(ld, -1) {
				integral += math.Exp(ld) * step
			}
		}
		if math.Abs(integral-1) > 5e-3 {
			t.Errorf("%s integrates to %v, want 1", k.Name(), integral)
		}
	}
}

// Both kernels must have standard deviation h per dimension (the √5
// rescaling of the Epanechnikov kernel is exactly about this).
func TestKernelsVarianceIsH2(t *testing.T) {
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		c, h := []float64{0}, []float64{0.4}
		var m2 float64
		const step = 0.0005
		for x := -5.0; x < 5; x += step {
			ld := k.LogDensity([]float64{x}, c, h)
			if !math.IsInf(ld, -1) {
				m2 += x * x * math.Exp(ld) * step
			}
		}
		if math.Abs(m2-0.16) > 2e-3 {
			t.Errorf("%s second moment = %v, want h² = 0.16", k.Name(), m2)
		}
	}
}

func TestEpanechnikovCompactSupport(t *testing.T) {
	k := Epanechnikov{}
	c, h := []float64{0}, []float64{1}
	// Support is |x| < √5·h.
	if ld := k.LogDensity([]float64{2.2}, c, h); math.IsInf(ld, -1) {
		t.Errorf("inside support should be finite")
	}
	if ld := k.LogDensity([]float64{2.3}, c, h); !math.IsInf(ld, -1) {
		t.Errorf("outside support should be -Inf")
	}
}

func TestGaussianSymmetry(t *testing.T) {
	k := Gaussian{}
	c, h := []float64{1, 2}, []float64{0.5, 0.7}
	a := k.LogDensity([]float64{1.3, 1.6}, c, h)
	b := k.LogDensity([]float64{0.7, 2.4}, c, h)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("kernel not symmetric about center: %v vs %v", a, b)
	}
}

func TestGaussianVarianceHelper(t *testing.T) {
	v := Gaussian{}.Variance([]float64{2, 0})
	if v[0] != 4 {
		t.Errorf("Variance[0] = %v, want 4", v[0])
	}
	if v[1] <= 0 {
		t.Errorf("degenerate bandwidth not floored: %v", v[1])
	}
}

func TestZeroBandwidthSafe(t *testing.T) {
	for _, k := range []Kernel{Gaussian{}, Epanechnikov{}} {
		ld := k.LogDensity([]float64{0}, []float64{0}, []float64{0})
		if math.IsNaN(ld) {
			t.Errorf("%s NaN for zero bandwidth", k.Name())
		}
	}
}

func TestByName(t *testing.T) {
	if k, ok := ByName("gaussian"); !ok || k.Name() != "gaussian" {
		t.Errorf("ByName(gaussian) failed")
	}
	if k, ok := ByName(""); !ok || k.Name() != "gaussian" {
		t.Errorf("default kernel should be gaussian")
	}
	if k, ok := ByName("epanechnikov"); !ok || k.Name() != "epanechnikov" {
		t.Errorf("ByName(epanechnikov) failed")
	}
	if _, ok := ByName("triweight"); ok {
		t.Errorf("unknown kernel accepted")
	}
}
