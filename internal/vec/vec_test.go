package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2, 3}
	y := Clone(x)
	y[0] = 9
	if x[0] != 1 {
		t.Fatalf("Clone aliases the input")
	}
	if Clone(nil) != nil {
		t.Fatalf("Clone(nil) should be nil")
	}
}

func TestConstructors(t *testing.T) {
	if got := Zeros(3); !Equal(got, []float64{0, 0, 0}) {
		t.Errorf("Zeros(3) = %v", got)
	}
	if got := Ones(2); !Equal(got, []float64{1, 1}) {
		t.Errorf("Ones(2) = %v", got)
	}
	if got := Constant(2, 7.5); !Equal(got, []float64{7.5, 7.5}) {
		t.Errorf("Constant(2,7.5) = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Add(x, y); !Equal(got, []float64{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(y, x); !Equal(got, []float64{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(2, x); !Equal(got, []float64{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Mul(x, y); !Equal(got, []float64{4, 10, 18}) {
		t.Errorf("Mul = %v", got)
	}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	x := []float64{1, 2}
	AddInPlace(x, []float64{10, 20})
	if !Equal(x, []float64{11, 22}) {
		t.Errorf("AddInPlace = %v", x)
	}
	AddScaledInPlace(x, 2, []float64{1, 1})
	if !Equal(x, []float64{13, 24}) {
		t.Errorf("AddScaledInPlace = %v", x)
	}
	ScaleInPlace(0.5, x)
	if !Equal(x, []float64{6.5, 12}) {
		t.Errorf("ScaleInPlace = %v", x)
	}
}

func TestNormsAndDistances(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Dist([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2([]float64{1, 1}, []float64{2, 2}); got != 2 {
		t.Errorf("Dist2 = %v, want 2", got)
	}
}

func TestReductions(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if got := Sum(x); got != 14 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(x); got != 2.8 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Min(x); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(x); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := ArgMax(x); got != 4 {
		t.Errorf("ArgMax = %v", got)
	}
	if got := ArgMin(x); got != 1 {
		t.Errorf("ArgMin = %v (want first of ties)", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Errorf("ArgMax/ArgMin of empty should be -1")
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty vector should panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestComparisons(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}) {
		t.Errorf("Equal with different dims")
	}
	if !AllClose([]float64{1, 2}, []float64{1.0001, 2.0001}, 1e-3) {
		t.Errorf("AllClose within tolerance failed")
	}
	if AllClose([]float64{1}, []float64{1.1}, 1e-3) {
		t.Errorf("AllClose outside tolerance passed")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Errorf("IsFinite with NaN")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Errorf("IsFinite with Inf")
	}
	if !IsFinite([]float64{0, -1, 1e300}) {
		t.Errorf("IsFinite rejected finite vector")
	}
}

func TestLerp(t *testing.T) {
	got := Lerp([]float64{0, 10}, []float64{10, 20}, 0.5)
	if !Equal(got, []float64{5, 15}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := String([]float64{1, 2.5}); got != "[1.000 2.500]" {
		t.Errorf("String = %q", got)
	}
}

// Property: addition commutes and Sub(Add(x,y),y) == x (up to fp exactness
// for these operations, which hold exactly for IEEE adds of the same
// operands in reverse).
func TestAddCommutesProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := a[:], b[:]
		return Equal(Add(x, y), Add(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot(x,x) ≥ 0 and Norm2 is its square root.
func TestNormProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e150 {
				return true // skip pathological inputs
			}
		}
		x := a[:]
		d := Dot(x, x)
		return d >= 0 && math.Abs(Norm2(x)-math.Sqrt(d)) < 1e-9*(1+math.Sqrt(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lerp endpoints reproduce the inputs.
func TestLerpEndpointsProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		x, y := a[:], b[:]
		return Equal(Lerp(x, y, 0), x) && Equal(Lerp(x, y, 1), y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
