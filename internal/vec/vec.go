// Package vec provides small dense-vector helpers used throughout the
// Bayes tree implementation. All operations treat vectors as immutable
// unless the function name says otherwise (the "Into" and "InPlace"
// variants); dimensions must agree, which is the caller's responsibility
// and is checked only in debug-style assertions where cheap.
//
// The package deliberately stays tiny: the Bayes tree and its substrates
// only ever need element-wise arithmetic, norms and a handful of
// reductions on []float64.
package vec

import (
	"fmt"
	"math"
)

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a new zero vector of dimension d.
func Zeros(d int) []float64 { return make([]float64, d) }

// Ones returns a new vector of dimension d with every component set to 1.
func Ones(d int) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Constant returns a new vector of dimension d with every component set to c.
func Constant(d int, c float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = c
	}
	return out
}

// Add returns x + y as a new vector.
func Add(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// AddInPlace adds y into x component-wise and returns x.
func AddInPlace(x, y []float64) []float64 {
	for i := range x {
		x[i] += y[i]
	}
	return x
}

// AddScaledInPlace adds a*y into x component-wise and returns x.
func AddScaledInPlace(x []float64, a float64, y []float64) []float64 {
	for i := range x {
		x[i] += a * y[i]
	}
	return x
}

// Sub returns x - y as a new vector.
func Sub(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// Scale returns a*x as a new vector.
func Scale(a float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a * x[i]
	}
	return out
}

// ScaleInPlace multiplies every component of x by a and returns x.
func ScaleInPlace(a float64, x []float64) []float64 {
	for i := range x {
		x[i] *= a
	}
	return x
}

// Mul returns the component-wise (Hadamard) product of x and y.
func Mul(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * y[i]
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Dist2 returns the squared Euclidean distance between x and y.
func Dist2(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between x and y.
func Dist(x, y []float64) float64 { return math.Sqrt(Dist2(x, y)) }

// Sum returns the sum of the components of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of the components of x, or 0 for an
// empty vector.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Min returns the smallest component of x. It panics on an empty vector
// because there is no sensible zero value.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("vec: Min of empty vector")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest component of x. It panics on an empty vector.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("vec: Max of empty vector")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest component of x, or -1 for an
// empty vector. Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest component of x, or -1 for an
// empty vector. Ties resolve to the lowest index.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v < x[best] {
			best = i
		}
	}
	return best
}

// Equal reports whether x and y have the same dimension and components.
func Equal(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether x and y have the same dimension and every
// component pair differs by at most tol in absolute value.
func AllClose(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component of x is finite (neither NaN
// nor ±Inf).
func IsFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Lerp returns (1-t)*x + t*y as a new vector.
func Lerp(x, y []float64, t float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = (1-t)*x[i] + t*y[i]
	}
	return out
}

// String formats x compactly for diagnostics, e.g. "[1.000 2.500]".
func String(x []float64) string {
	s := "["
	for i, v := range x {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", v)
	}
	return s + "]"
}
