package bayestree

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for paper-vs-measured records):
//
//	BenchmarkTable1Datasets    — Table 1 (data set inventory / generation)
//	BenchmarkFigure2Pendigits  — Figure 2 (anytime accuracy per loader)
//	BenchmarkFigure3Letter     — Figure 3
//	BenchmarkFigure4Gender     — Figure 4 top (glo vs bft)
//	BenchmarkFigure4Covertype  — Figure 4 bottom (glo vs bft)
//
// plus ablations for the design choices the paper discusses (descent
// strategies, priority measures, qbk, kernels, fanout, multi-class tree)
// and micro-benchmarks of the core operations.
//
// Accuracy results are attached as custom benchmark metrics
// (acc@N = anytime accuracy after N node reads, mean-acc = area under the
// anytime curve). Benchmarks use reduced data set scales so the full
// suite completes in minutes; `go run ./cmd/anytime` reproduces the
// figures at larger scale.

import (
	"fmt"
	"runtime"
	"testing"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/eval"
	"bayestree/internal/kernels"
)

// benchScale keeps figure benchmarks tractable: curves keep their shape
// well below full size (see EXPERIMENTS.md).
const benchScale = 0.12

func benchDataset(b *testing.B, name string, scale float64) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.ByName(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func reportCurve(b *testing.B, c *eval.Curve) {
	b.ReportMetric(c.At(10), "acc@10")
	b.ReportMetric(c.At(50), "acc@50")
	b.ReportMetric(c.Final(), "acc@100")
	b.ReportMetric(c.Mean(), "mean-acc")
}

// runFigure measures one curve per loader/strategy combination as a
// sub-benchmark.
func runFigure(b *testing.B, dsName string, scale float64, loaders []string, strategies []core.Strategy) {
	ds := benchDataset(b, dsName, scale)
	for _, strat := range strategies {
		for _, name := range loaders {
			label := name
			if len(strategies) > 1 {
				label = fmt.Sprintf("%s/%s", name, strat)
			}
			b.Run(label, func(b *testing.B) {
				loader, ok := bulkload.ByName(name)
				if !ok {
					b.Fatalf("unknown loader %s", name)
				}
				var last *eval.Curve
				for i := 0; i < b.N; i++ {
					c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
						Folds:    4,
						MaxNodes: 100,
						Seed:     42,
						Classifier: core.ClassifierOptions{
							Strategy: strat,
							Priority: core.PriorityProbabilistic,
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					last = c
				}
				reportCurve(b, last)
			})
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1: the four data sets with
// their sizes, class and feature counts (generation throughput is the
// measured cost; the inventory itself is printed by cmd/anytime).
func BenchmarkTable1Datasets(b *testing.B) {
	for _, row := range dataset.Table1() {
		b.Run(row.Name, func(b *testing.B) {
			var ds *dataset.Dataset
			for i := 0; i < b.N; i++ {
				var err error
				ds, err = dataset.ByName(nameLower(row.Name), benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.Size), "paper-size")
			b.ReportMetric(float64(ds.Len()), "bench-size")
			b.ReportMetric(float64(len(ds.Classes())), "classes")
			b.ReportMetric(float64(ds.Dim()), "features")
		})
	}
}

func nameLower(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// BenchmarkFigure2Pendigits regenerates Figure 2: anytime classification
// accuracy on pendigits for the four bulk-loading strategies under global
// best-first descent.
func BenchmarkFigure2Pendigits(b *testing.B) {
	runFigure(b, "pendigits", benchScale,
		[]string{"emtopdown", "hilbert", "goldberger", "iterative"},
		[]core.Strategy{core.DescentGlobal})
}

// BenchmarkFigure3Letter regenerates Figure 3 on the letter data set.
func BenchmarkFigure3Letter(b *testing.B) {
	runFigure(b, "letter", benchScale,
		[]string{"emtopdown", "hilbert", "goldberger", "iterative"},
		[]core.Strategy{core.DescentGlobal})
}

// BenchmarkFigure4Gender regenerates Figure 4 (top): gender with glo and
// bft descents for EMTopDown/Hilbert/Iterativ.
func BenchmarkFigure4Gender(b *testing.B) {
	runFigure(b, "gender", 0.01,
		[]string{"emtopdown", "hilbert", "iterative"},
		[]core.Strategy{core.DescentGlobal, core.DescentBFT})
}

// BenchmarkFigure4Covertype regenerates Figure 4 (bottom): covertype with
// glo and bft descents.
func BenchmarkFigure4Covertype(b *testing.B) {
	runFigure(b, "covertype", 0.004,
		[]string{"emtopdown", "hilbert", "iterative"},
		[]core.Strategy{core.DescentGlobal, core.DescentBFT})
}

// --- Ablations beyond the paper's figures -------------------------------

// BenchmarkAblationDescent sweeps all descent strategies (the paper's
// Section 2.2 finding: glo best, then bft, then dft), each in two layout
// variants: the pointer tree and the structure-of-arrays mirror
// (vectorized descent). The layouts are digit-identical in accuracy —
// the acc@N metrics must match pairwise — so the rows isolate the pure
// layout cost of each strategy.
func BenchmarkAblationDescent(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, ok := bulkload.ByName("emtopdown")
	if !ok {
		b.Fatal("unknown loader emtopdown")
	}
	for _, strat := range []core.Strategy{core.DescentGlobal, core.DescentBFT, core.DescentDFT} {
		for _, layout := range []struct {
			name string
			soa  bool
		}{{"pointer", false}, {"soa", true}} {
			b.Run(fmt.Sprintf("emtopdown/%s/%s", strat, layout.name), func(b *testing.B) {
				var last *eval.Curve
				for i := 0; i < b.N; i++ {
					c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
						Folds:    4,
						MaxNodes: 100,
						Seed:     42,
						SoA:      layout.soa,
						Classifier: core.ClassifierOptions{
							Strategy: strat,
							Priority: core.PriorityProbabilistic,
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					last = c
				}
				reportCurve(b, last)
			})
		}
	}
}

// BenchmarkAblationPriority compares the probabilistic and geometric
// priority measures for global descent.
func BenchmarkAblationPriority(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("emtopdown")
	for _, prio := range []core.Priority{core.PriorityProbabilistic, core.PriorityGeometric} {
		b.Run(prio.String(), func(b *testing.B) {
			var last *eval.Curve
			for i := 0; i < b.N; i++ {
				c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
					Folds: 4, MaxNodes: 100, Seed: 42,
					Classifier: core.ClassifierOptions{Priority: prio},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			reportCurve(b, last)
		})
	}
}

// BenchmarkAblationQBK sweeps the qbk parameter k (the paper settled on
// k = 2).
func BenchmarkAblationQBK(b *testing.B) {
	ds := benchDataset(b, "letter", 0.08)
	loader, _ := bulkload.ByName("emtopdown")
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var last *eval.Curve
			for i := 0; i < b.N; i++ {
				c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
					Folds: 4, MaxNodes: 100, Seed: 42,
					Classifier: core.ClassifierOptions{K: k},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			reportCurve(b, last)
		})
	}
}

// BenchmarkAblationKernel swaps the leaf kernel (Section 4.1 future work:
// Epanechnikov instead of Gaussian).
func BenchmarkAblationKernel(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("emtopdown")
	for _, k := range []kernels.Kernel{kernels.Gaussian{}, kernels.Epanechnikov{}} {
		b.Run(k.Name(), func(b *testing.B) {
			kernel := k
			cfgFn := func(dim int) core.Config {
				cfg := core.DefaultConfig(dim)
				cfg.Kernel = kernel
				return cfg
			}
			var last *eval.Curve
			for i := 0; i < b.N; i++ {
				c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
					Folds: 4, MaxNodes: 100, Seed: 42, Config: cfgFn,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			reportCurve(b, last)
		})
	}
}

// BenchmarkAblationFanout sweeps the page-size-derived fanout (the
// structural trade-off the paper inherits from its 2 KiB pages).
func BenchmarkAblationFanout(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("emtopdown")
	for _, m := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			fan := m
			cfgFn := func(dim int) core.Config {
				cfg := core.DefaultConfig(dim)
				cfg.MaxFanout = fan
				cfg.MinFanout = fan * 2 / 5
				return cfg
			}
			var last *eval.Curve
			for i := 0; i < b.N; i++ {
				c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
					Folds: 4, MaxNodes: 100, Seed: 42, Config: cfgFn,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			reportCurve(b, last)
		})
	}
}

// BenchmarkAblationMultiTree compares the Section 4.1 single multi-class
// tree against the per-class forest (both built incrementally, so the
// comparison isolates the structural change).
func BenchmarkAblationMultiTree(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	b.Run("forest-iterative", func(b *testing.B) {
		loader, _ := bulkload.ByName("iterative")
		var last *eval.Curve
		for i := 0; i < b.N; i++ {
			c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{Folds: 4, MaxNodes: 100, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			last = c
		}
		reportCurve(b, last)
	})
	for _, mo := range []struct {
		name string
		opts core.MultiOptions
	}{
		{"multitree", core.MultiOptions{}},
		{"multitree-pooled", core.MultiOptions{PooledVariance: true}},
		{"multitree-entropy", core.MultiOptions{EntropyPriority: true}},
	} {
		b.Run(mo.name, func(b *testing.B) {
			var last *eval.Curve
			for i := 0; i < b.N; i++ {
				c, err := eval.MultiCurve(ds, mo.opts, eval.CurveOptions{Folds: 4, MaxNodes: 100, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			reportCurve(b, last)
		})
	}
}

// --- Micro-benchmarks of the core operations ----------------------------

// BenchmarkBulkLoad measures tree construction per strategy (the build
// cost the paper trades for anytime accuracy).
func BenchmarkBulkLoad(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	pts := ds.ByClass()[0]
	cfg := core.DefaultConfig(ds.Dim())
	for _, name := range bulkload.Names() {
		b.Run(name, func(b *testing.B) {
			loader, _ := bulkload.ByName(name)
			b.ReportMetric(float64(len(pts)), "points")
			for i := 0; i < b.N; i++ {
				if _, err := loader.Build(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsert measures incremental insertion throughput.
func BenchmarkInsert(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	cfg := core.DefaultConfig(ds.Dim())
	b.ResetTimer()
	var tree *core.Tree
	for i := 0; i < b.N; i++ {
		if i%ds.Len() == 0 {
			var err error
			tree, err = core.NewTree(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := tree.Insert(ds.X[i%ds.Len()]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassify measures anytime classification at several budgets.
func BenchmarkClassify(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("emtopdown")
	clf, err := eval.TrainForest(ds, loader, core.DefaultConfig, core.ClassifierOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clf.Classify(ds.X[i%ds.Len()], budget)
			}
		})
	}
}

// BenchmarkDensityQuery measures pure frontier refinement throughput.
func BenchmarkDensityQuery(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("hilbert")
	tree, err := loader.Build(ds.ByClass()[0], core.DefaultConfig(ds.Dim()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tree.NewCursor(ds.X[i%ds.Len()], core.DescentGlobal, core.PriorityProbabilistic)
		for s := 0; s < 20; s++ {
			cur.Refine()
		}
		_ = cur.LogDensity()
		cur.Close()
	}
}

// BenchmarkRefine measures the steady-state anytime refine loop per
// descent strategy: one pooled cursor per query, 20 node reads, frozen
// Gaussians on the hot path. The seed path (CF.Gaussian per entry per
// query, boxing container/heap, uncached root summary and bandwidths) ran
// this at ~35-37 µs with 45-73 allocs per query; the frozen fast path must
// hold 0 allocs/op (see EXPERIMENTS.md for recorded numbers).
func BenchmarkRefine(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("hilbert")
	tree, err := loader.Build(ds.ByClass()[0], core.DefaultConfig(ds.Dim()))
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []core.Strategy{core.DescentGlobal, core.DescentBFT, core.DescentDFT} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cur := tree.NewCursor(ds.X[i%ds.Len()], strat, core.PriorityProbabilistic)
				for s := 0; s < 20; s++ {
					cur.Refine()
				}
				_ = cur.LogDensity()
				cur.Close()
			}
		})
	}
}

// BenchmarkClassifyBatch measures the parallel batch-classification engine
// at increasing worker counts against the sequential loop, with custom
// speedup metrics. Worker count 1 exercises the pooled sequential path.
func BenchmarkClassifyBatch(b *testing.B) {
	ds := benchDataset(b, "pendigits", benchScale)
	loader, _ := bulkload.ByName("emtopdown")
	clf, err := eval.TrainForest(ds, loader, core.DefaultConfig, core.ClassifierOptions{})
	if err != nil {
		b.Fatal(err)
	}
	xs := ds.X
	const budget = 25
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clf.ClassifyBatch(xs, budget, workers)
			}
			b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "objects/s")
		})
	}
}
