// Package bayestree is a Go implementation of index-based anytime stream
// mining as published in "Using Index Structures for Anytime Stream
// Mining" (Kranen, VLDB 2009) and the underlying Bayes tree (Seidl et al.,
// EDBT 2009).
//
// The Bayes tree is a balanced R*-tree-like index whose entries carry
// cluster features (n, LS, SS), so every tree level — and every mixed
// frontier of entries — is a complete Gaussian mixture model of the data.
// An anytime Bayesian classifier descends one tree per class, refining the
// mixture one node read at a time, and can return the current best
// prediction at any interruption point. Bulk-loading strategies
// (EM top-down, Hilbert/Z-curve/STR packing, Goldberger and
// virtual-sampling mixture reduction) shape the hierarchy for better
// anytime accuracy than iterative insertion.
//
// This package is the public facade: it re-exports the core types and
// provides one-call training. The implementation lives in internal/
// packages (core, bulkload, dataset, eval, stream, clustree, and the
// substrates em, mixture, stats, kernels, mbr, rstar, sfc, vec).
//
// # The frozen-Gaussian fast path
//
// Anytime refinement is the serving hot path, and it is specialised
// accordingly. Every tree entry eagerly caches a frozen form of its
// cluster feature's Gaussian (mean, inverse variances, precomputed
// log-normaliser and log count), and each tree caches its query-time
// constants (root summary, Silverman bandwidths, frozen leaf kernel).
// The caches are invalidated by Insert — and only by Insert — and
// entries whose cluster features change are always rebuilt with fresh
// caches, so a cursor created after an insert sees the new data
// exactly. Cursors and classification queries are pooled: calling
// Close on them recycles their internal buffers, making steady-state
// classification allocation-free. Do not interleave Learn/Insert with
// in-flight queries on the same trees.
//
// # Batch classification
//
// Classification is read-only, so BatchClassify (and
// Classifier.ClassifyBatch / ClassifyBatchBudgets) fan a batch of
// objects over a worker pool sharing one classifier — the throughput
// path for stream serving. Use per-item Classify when each object must
// see every earlier label; use batches when objects may share a model
// snapshot. RunStreamBatch combines both for online streams: windows
// are classified in parallel, labels are learned between windows.
//
// # Persistence
//
// Save and Load (Encode/Decode for streams) snapshot a trained
// classifier to a versioned, checksummed binary format that stores the
// model's source of truth — configuration, topology, observations and
// cluster features — with float64 values preserved bit-exactly. The
// derived frozen caches are rebuilt on load through the same freeze
// path the tree builder uses, so a reloaded model classifies
// digit-identically to the saved one; corrupted, truncated and
// incompatible-version snapshots are rejected before any model state
// is built. Snapshots are written atomically (temp file + rename).
//
// # Serving
//
// The internal/server package (driven by cmd/serveclass) serves
// anytime classification over HTTP from a sharded multi-class model:
// per-shard reader/writer locks let inserts proceed while other shards
// keep classifying, a global token-bucket admission controller makes
// aggregate refinement work track a configured node-read capacity, and
// NDJSON streaming classifies request batches in parallel windows.
// See ARCHITECTURE.md for the full design.
//
// Quick start:
//
//	ds, _ := bayestree.LoadCSV("train.csv", bayestree.CSVOptions{LabelColumn: -1})
//	clf, _ := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
//	label := clf.Classify(x, 25) // classify x with a budget of 25 node reads
//	_ = bayestree.Save(clf, "model.btsn")
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package bayestree
