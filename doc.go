// Package bayestree is a Go implementation of index-based anytime stream
// mining as published in "Using Index Structures for Anytime Stream
// Mining" (Kranen, VLDB 2009) and the underlying Bayes tree (Seidl et al.,
// EDBT 2009).
//
// The Bayes tree is a balanced R*-tree-like index whose entries carry
// cluster features (n, LS, SS), so every tree level — and every mixed
// frontier of entries — is a complete Gaussian mixture model of the data.
// An anytime Bayesian classifier descends one tree per class, refining the
// mixture one node read at a time, and can return the current best
// prediction at any interruption point. Bulk-loading strategies
// (EM top-down, Hilbert/Z-curve/STR packing, Goldberger and
// virtual-sampling mixture reduction) shape the hierarchy for better
// anytime accuracy than iterative insertion.
//
// This package is the public facade: it re-exports the core types and
// provides one-call training. The implementation lives in internal/
// packages (core, bulkload, dataset, eval, stream, clustree, and the
// substrates em, mixture, stats, kernels, mbr, rstar, sfc, vec).
//
// Quick start:
//
//	ds, _ := bayestree.LoadCSV("train.csv", bayestree.CSVOptions{LabelColumn: -1})
//	clf, _ := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
//	label := clf.Classify(x, 25) // classify x with a budget of 25 node reads
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package bayestree
