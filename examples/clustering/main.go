// Clustering demonstrates the Section 4.2 extension: anytime clustering of
// an evolving data stream with decayed cluster features, parked insertions
// under time pressure, and a density-based offline step that recovers the
// macro clusters — including tracking a concept drift, where one cluster
// migrates and the decayed summaries follow it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bayestree/internal/clustree"
)

func main() {
	cfg := clustree.DefaultConfig(2)
	cfg.Lambda = 0.004 // weights halve every 250 time units
	tree, err := clustree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	// Three Gaussian sources; source C drifts from (0.8, 0.2) to
	// (0.8, 0.8) over the run.
	sources := [][]float64{{0.2, 0.2}, {0.2, 0.8}, {0.8, 0.2}}
	const n = 20000
	for i := 0; i < n; i++ {
		ts := float64(i)
		progress := float64(i) / n
		src := rng.Intn(3)
		cx := sources[src][0]
		cy := sources[src][1]
		if src == 2 {
			cy = 0.2 + 0.6*progress // drift
		}
		x := []float64{
			clamp01(cx + 0.05*rng.NormFloat64()),
			clamp01(cy + 0.05*rng.NormFloat64()),
		}
		// A bursty stream: most objects allow a full descent, but every
		// so often a burst leaves almost no time and objects get parked
		// in inner nodes (the anytime insertion of Section 4.2).
		budget := -1
		if i%7 == 0 {
			budget = 1
		}
		if err := tree.Insert(x, ts, budget); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("inserted %d objects, %d parked under time pressure, %d leaf splits\n",
		tree.Inserts(), tree.Parked(), tree.Splits())
	fmt.Printf("total decayed weight in tree: %.1f (decay forgets old data)\n", tree.Weight())

	mcs := tree.MicroClusters(2.0)
	fmt.Printf("micro-clusters (weight ≥ 2): %d\n", len(mcs))

	macros, noise := clustree.MacroClusters(mcs, clustree.MacroOptions{Eps: 0.15, MinWeight: 5})
	fmt.Printf("macro clusters: %d (noise micro-clusters: %d)\n", len(macros), len(noise))
	for i, m := range macros {
		fmt.Printf("  cluster %d: weight %7.1f at (%.2f, %.2f) from %d micro-clusters\n",
			i, m.Weight, m.Mean[0], m.Mean[1], len(m.Members))
	}
	fmt.Println("\nnote: the drifting source is found near its FINAL position (0.8, 0.8)")
	fmt.Println("because exponential decay forgot its early locations — the paper's")
	fmt.Println("\"up-to-date view on the data distribution in constant space\".")

	if err := tree.Validate(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
