// Serving: stand up the sharded anytime classification server
// in-process, ingest a labelled stream while serving reads, snapshot
// the model, warm-start a second server from the snapshot and verify
// it answers digit-identically — the full serving lifecycle without
// leaving one process. cmd/serveclass wraps the same pieces behind
// HTTP; see ARCHITECTURE.md for the design.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"bayestree/internal/core"
	"bayestree/internal/server"
	"bayestree/internal/stream"
)

func main() {
	// A 4-shard server over an empty 3-class model: every observation
	// arrives online, hash-routed to one shard. The admission controller
	// caps aggregate refinement at 100k node reads/second.
	srv, err := server.NewEmpty(4, core.DefaultConfig(3), []int{0, 1, 2},
		core.MultiOptions{}, server.Config{DefaultBudget: 40, NodesPerSecond: 100_000})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest-while-serving: the server implements stream.Engine, so the
	// windowed stream runner drives it directly — each window is
	// classified in parallel with the budgets its arrival gaps allow,
	// then the window's labels are inserted.
	rng := rand.New(rand.NewSource(3))
	items := make([]stream.Item, 3000)
	for i := range items {
		label := rng.Intn(3)
		items[i] = stream.Item{
			X: []float64{
				float64(label)*2.5 + 0.5*rng.NormFloat64(),
				-float64(label)*2.5 + 0.5*rng.NormFloat64(),
				rng.NormFloat64(),
			},
			Label:   label,
			Labeled: true,
		}
	}
	// Cold start: a classifier with no observations cannot answer, so the
	// first handful of labelled arrivals is inserted directly before the
	// classify-and-learn stream begins.
	const seedN = 100
	for _, it := range items[:seedN] {
		if err := srv.Insert(it.X, it.Label); err != nil {
			log.Fatal(err)
		}
	}
	res, err := stream.RunBatch(srv, items[seedN:], stream.Poisson{Rate: 500},
		stream.Budgeter{NodesPerSecond: 20_000, MaxNodes: 100}, 1, 64, 4)
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("ingested %d objects (online accuracy %.3f) into shards %v\n",
		seedN+res.Learned, res.Accuracy, st.ShardSizes)

	// Snapshot the live model and warm-start a replica from it.
	var snap bytes.Buffer
	if err := srv.WriteSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes for %d observations\n", snap.Len(), st.Observations)
	replica, err := server.FromSnapshot(&snap, server.Config{DefaultBudget: 40})
	if err != nil {
		log.Fatal(err)
	}

	// The replica answers digit-identically to the original.
	identical := true
	for i := 0; i < 500; i++ {
		x := items[rng.Intn(len(items))].X
		a, err1 := srv.Classify(x, 40)
		b, err2 := replica.Classify(x, 40)
		if err1 != nil || err2 != nil {
			log.Fatal(err1, err2)
		}
		if a.Label != b.Label || a.NodesRead != b.NodesRead {
			identical = false
		}
	}
	fmt.Println("warm-started replica digit-identical:", identical)
}
