// Healthmonitor reproduces the multi-step classification architecture the
// paper deployed in the HealthNet scenario [13], run the way a ward
// actually operates: every patient keeps their *own* anytime classifier
// (vital-sign baselines differ too much for one global model), all
// served from one process through the multi-tenant registry with a
// resident cap far below the ward size — the hot patients' models stay
// in memory, the rest page to disk and reload digit-identically.
//
// The multi-step policy is decision stability: the bedside device
// classifies twice, at a coarse and at its full (still tiny) budget. If
// the two anytime answers agree the decision is made locally; if they
// disagree — the anytime curve is still moving — the observation
// escalates to the server budget. Together the devices produce exactly
// the varying stream of the paper's Section 4.1 discussion.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"bayestree/internal/registry"
	"bayestree/internal/server"
)

const (
	patients = 40 // ward size: one model per patient
	resident = 8  // model cache: resident cap ≪ ward size
	vitals   = 9  // features: heart rate, SpO2, BP, temperature, ...
	classes  = 4  // patient status: stable, watch, alert, critical
	readings = 9000

	coarseBudget = 1   // first look on the device
	mobileBudget = 3   // full budget affordable on the device
	serverBudget = 100 // node reads on the server
)

// patientName is the tenant key for one patient's model.
func patientName(id int) string { return fmt.Sprintf("patient-%03d", id) }

// observation draws one vitals vector: each patient has their own
// per-class baselines (resting heart rate, typical BP, ...), so models
// are genuinely per-patient — a reading is only classified well by the
// model that learned that patient.
func observation(rng *rand.Rand, patient, status int) []float64 {
	x := make([]float64, vitals)
	baseline := rand.New(rand.NewSource(int64(patient)*877 + int64(status)))
	for v := range x {
		center := 0.6*float64(status) + 0.45*baseline.NormFloat64()
		x[v] = center + 0.55*rng.NormFloat64()
	}
	return x
}

func main() {
	dir, err := os.MkdirTemp("", "healthmonitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	labels := make([]int, classes)
	for i := range labels {
		labels[i] = i
	}
	reg, err := registry.Open(registry.Options{
		Dir:         dir,
		MaxResident: resident,
		FsyncEvery:  5 * time.Millisecond,
		Defaults:    registry.TenantConfig{Dim: vitals, Labels: labels},
	}, registry.ClassifyBackend())
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Readings arrive interleaved across the ward under Zipf skew (the
	// unstable patients report far more often); every 4th reading per
	// patient carries a clinician label, the rest go through the
	// multi-step policy against that patient's own model.
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.2, 1, patients-1)
	seen := make([]int, patients)
	var local, escalated int
	var policyCorrect, mobileCorrect, serverCorrect, decided int
	var serverLoad int
	for i := 0; i < readings; i++ {
		patient := int(zipf.Uint64())
		status := rng.Intn(classes)
		x := observation(rng, patient, status)
		labeled := seen[patient]%4 == 0 || seen[patient] < classes
		seen[patient]++
		err := reg.With(patientName(patient), true, func(s *server.Server) error {
			if labeled {
				return s.Insert(x, status)
			}
			coarse, err := s.Classify(x, coarseBudget)
			if err != nil {
				return err
			}
			mobile, err := s.Classify(x, mobileBudget)
			if err != nil {
				return err
			}
			pred := mobile.Label
			if coarse.Label != mobile.Label {
				// The anytime answer is still changing between budgets:
				// escalate this observation to the server budget.
				full, err := s.Classify(x, serverBudget)
				if err != nil {
					return err
				}
				pred = full.Label
				escalated++
				serverLoad += full.Granted
			} else {
				local++
			}
			decided++
			if pred == status {
				policyCorrect++
			}
			// Reference points measured on the same stream.
			if mobile.Label == status {
				mobileCorrect++
			}
			full, err := s.Classify(x, serverBudget)
			if err != nil {
				return err
			}
			if full.Label == status {
				serverCorrect++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	st := reg.Stats()
	fmt.Printf("ward: %d patients, %d resident models (cap %d)\n",
		st.Tenants, st.Resident, st.MaxResident)
	fmt.Printf("paging: %d evictions, %d cold loads (mean %.2fms)\n",
		st.Evictions, st.ColdLoads, st.ColdLoadMeanMs)
	fmt.Printf("multi-step policy over %d unlabeled readings:\n", decided)
	fmt.Printf("  decided at bedside (≤%d nodes): %d (%.1f%%)\n",
		mobileBudget, local, 100*float64(local)/float64(decided))
	fmt.Printf("  escalated to server:            %d (%.1f%%), %d server node reads\n",
		escalated, 100*float64(escalated)/float64(decided), serverLoad)
	fmt.Printf("  policy accuracy:                %.3f\n", float64(policyCorrect)/float64(decided))
	fmt.Printf("  always-mobile accuracy:         %.3f\n", float64(mobileCorrect)/float64(decided))
	fmt.Printf("  always-server accuracy:         %.3f\n", float64(serverCorrect)/float64(decided))
}
