// Healthmonitor reproduces the multi-step classification architecture the
// paper deployed in the HealthNet scenario [13]: resource-restricted
// mobile devices run a cheap pre-classification using only the upper
// levels of the trained Bayes trees; depending on how confident that
// pre-classification is, they transmit more or fewer observations to a
// central server, which classifies with the full (or large-budget) model —
// together producing a varying stream at the server exactly as in the
// paper's Section 4.1 discussion.
package main

import (
	"fmt"
	"log"

	"bayestree"
)

func main() {
	// A 4-class "patient status" problem over 9 vital-sign features.
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "vitals", Size: 6000, Classes: 4, Features: 9,
		ModesPerClass: 5, Spread: 0.11, Overlap: 0.45, DominantWeight: 0.4, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := ds.Len()
	trainIdx := make([]int, 0, n*2/3)
	testIdx := make([]int, 0, n/3)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	train := ds.Subset(trainIdx, "train")
	test := ds.Subset(testIdx, "test")

	clf, err := bayestree.Train(train, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 (mobile): pre-classify with a tiny budget; measure the
	// posterior margin to decide whether to escalate.
	const (
		mobileBudget    = 3    // node reads affordable on the device
		serverBudget    = 100  // node reads on the server
		marginThreshold = 0.75 // posterior confidence to decide locally
	)
	var local, escalated, correct int
	var serverLoad int
	for i := range test.X {
		q := clf.NewQuery(test.X[i])
		for s := 0; s < mobileBudget; s++ {
			q.Step()
		}
		post := q.Posteriors()
		best, conf := argmaxConf(post)
		var pred int
		if conf >= marginThreshold {
			pred = clf.Labels()[best]
			local++
		} else {
			// Escalate: the server continues the SAME anytime query — the
			// hierarchy makes the mobile work a strict prefix of the
			// server's.
			for s := 0; s < serverBudget; s++ {
				if !q.Step() {
					break
				}
			}
			pred = q.Predict()
			escalated++
			serverLoad += q.NodesRead() - mobileBudget
		}
		if pred == test.Y[i] {
			correct++
		}
	}
	total := len(test.X)
	fmt.Printf("multi-step classification of %d observations\n", total)
	fmt.Printf("  decided on device (≤%d nodes): %d (%.1f%%)\n", mobileBudget, local, 100*float64(local)/float64(total))
	fmt.Printf("  escalated to server:           %d (%.1f%%), %d extra node reads total\n",
		escalated, 100*float64(escalated)/float64(total), serverLoad)
	fmt.Printf("  end-to-end accuracy:           %.3f\n", float64(correct)/float64(total))

	// Reference points: always-mobile and always-server accuracy.
	for _, ref := range []struct {
		name   string
		budget int
	}{{"always mobile", mobileBudget}, {"always server", serverBudget}} {
		c := 0
		for i := range test.X {
			if clf.Classify(test.X[i], ref.budget) == test.Y[i] {
				c++
			}
		}
		fmt.Printf("  %-30s %.3f\n", ref.name+" accuracy:", float64(c)/float64(total))
	}
}

func argmaxConf(post []float64) (int, float64) {
	best := 0
	for i, p := range post {
		if p > post[best] {
			best = i
		}
	}
	return best, post[best]
}
