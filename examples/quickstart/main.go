// Quickstart: train an anytime Bayes tree classifier and classify under
// different node budgets — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"bayestree"
)

func main() {
	// A small synthetic 3-class problem (seeded, so runs are identical).
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "demo", Size: 3000, Classes: 3, Features: 8,
		ModesPerClass: 4, Spread: 0.09, Overlap: 0.35, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hold out the last 500 objects for testing.
	trainIdx := make([]int, 2500)
	testIdx := make([]int, 500)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = 2500 + i
	}
	train := ds.Subset(trainIdx, "train")
	test := ds.Subset(testIdx, "test")

	// Train with the paper's best bulk-loading strategy (EM top-down).
	clf, err := bayestree.Train(train, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}

	// The anytime property: the same classifier answers under any budget,
	// and more time (node reads) buys more accuracy.
	for _, budget := range []int{0, 2, 5, 10, 25, 50, -1} {
		correct := 0
		for i := range test.X {
			if clf.Classify(test.X[i], budget) == test.Y[i] {
				correct++
			}
		}
		name := fmt.Sprintf("%5d nodes", budget)
		if budget < 0 {
			name = " full model"
		}
		fmt.Printf("budget %s → accuracy %.3f\n", name, float64(correct)/float64(len(test.X)))
	}

	// Interruptible, step-by-step use of a single query.
	q := clf.NewQuery(test.X[0])
	fmt.Printf("\nanytime refinement of one object (true label %d):\n", test.Y[0])
	for step := 0; step <= 20; step += 5 {
		fmt.Printf("  after %2d nodes: prediction %d, posteriors %v\n",
			q.NodesRead(), q.Predict(), roundAll(q.Posteriors()))
		for i := 0; i < 5; i++ {
			q.Step()
		}
	}
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*1000)) / 1000
	}
	return out
}
