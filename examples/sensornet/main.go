// Sensornet simulates the fleet-monitoring scenario of the paper's
// introduction, scaled out the way deployments actually run: every
// sensor keeps its *own* anytime classifier (local calibration means
// one global model fits nobody), all served from one process through
// the multi-tenant registry. Sensor activity is Zipf-skewed — a few
// chatty sensors and a long cold tail — so the registry's LRU paging
// keeps only the hot sensors' models resident and checkpoints the rest
// to disk, reloading them digit-identically when they next report.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"bayestree/internal/registry"
	"bayestree/internal/server"
)

const (
	sensors  = 64 // fleet size
	resident = 8  // model cache: resident cap ≪ fleet size
	channels = 6  // readings per sensor: 6 channels
	classes  = 5  // event classes
	readings = 12000
	budget   = 32 // node reads granted per classification
)

// sensorName is the tenant key for one sensor.
func sensorName(id int) string { return fmt.Sprintf("sensor-%03d", id) }

// reading draws one observation for a sensor: each sensor has its own
// per-class channel offsets (local calibration drift), so models are
// genuinely per-sensor — a reading is only classified well by the model
// that learned that sensor.
func reading(rng *rand.Rand, sensor, class int) []float64 {
	x := make([]float64, channels)
	calib := rand.New(rand.NewSource(int64(sensor)*1009 + int64(class)))
	for c := range x {
		center := float64(class) + 0.35*calib.NormFloat64()
		x[c] = center + 0.12*rng.NormFloat64()
	}
	return x
}

func main() {
	dir, err := os.MkdirTemp("", "sensornet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	labels := make([]int, classes)
	for i := range labels {
		labels[i] = i
	}
	reg, err := registry.Open(registry.Options{
		Dir:         dir,
		MaxResident: resident,
		FsyncEvery:  5 * time.Millisecond,
		Defaults:    registry.TenantConfig{Dim: channels, Labels: labels},
	}, registry.ClassifyBackend())
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Readings arrive interleaved across the fleet under Zipf skew;
	// every 4th reading per sensor carries an expert label (sporadic
	// supervision), the rest are classified by that sensor's own model.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, sensors-1)
	seen := make([]int, sensors)
	var classified, correct int
	for i := 0; i < readings; i++ {
		sensor := int(zipf.Uint64())
		class := rng.Intn(classes)
		x := reading(rng, sensor, class)
		labeled := seen[sensor]%4 == 0 || seen[sensor] < classes
		seen[sensor]++
		err := reg.With(sensorName(sensor), true, func(s *server.Server) error {
			if labeled {
				return s.Insert(x, class)
			}
			res, err := s.Classify(x, budget)
			if err != nil {
				return err
			}
			classified++
			if res.Label == class {
				correct++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	st := reg.Stats()
	fmt.Printf("fleet: %d sensors, %d resident models (cap %d)\n",
		st.Tenants, st.Resident, st.MaxResident)
	fmt.Printf("paging: %d evictions, %d cold loads (mean %.2fms)\n",
		st.Evictions, st.ColdLoads, st.ColdLoadMeanMs)
	fmt.Printf("accuracy on %d unlabeled readings: %.3f\n",
		classified, float64(correct)/float64(classified))

	// The cold tail is still live: evict one sensor explicitly, then
	// query it — the registry reloads its checkpoint on touch and the
	// model answers exactly as before paging.
	victim := sensorName(0)
	if err := reg.Evict(victim); err != nil {
		log.Fatal(err)
	}
	probe := reading(rng, 0, 3)
	err = reg.With(victim, false, func(s *server.Server) error {
		res, err := s.Classify(probe, budget)
		if err != nil {
			return err
		}
		fmt.Printf("%s after evict+reload: label=%d granted=%d of %d\n",
			victim, res.Label, res.Granted, res.Requested)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
