// Sensornet simulates the varying-stream scenario of the paper's
// introduction: sensor readings arrive under a Poisson process, so the
// time — and therefore the node budget — available per object fluctuates;
// the anytime classifier uses whatever each gap allows and keeps learning
// online from sporadically labelled readings.
package main

import (
	"fmt"
	"log"

	"bayestree"
)

func main() {
	// 5 event classes over 6 sensor channels.
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "sensors", Size: 12000, Classes: 5, Features: 6,
		ModesPerClass: 5, Spread: 0.1, Overlap: 0.45, DominantWeight: 0.4, Seed: 1234,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds.Shuffle(5)
	nTrain := 4000
	trainIdx := make([]int, nTrain)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	train := ds.Subset(trainIdx, "train")

	// The rest of the data arrives as a stream; every 4th reading has an
	// expert label (sporadic supervision, as in monitoring applications).
	items := make([]bayestree.StreamItem, 0, ds.Len()-nTrain)
	for i := nTrain; i < ds.Len(); i++ {
		items = append(items, bayestree.StreamItem{
			X: ds.X[i], Label: ds.Y[i], Labeled: i%4 == 0,
		})
	}

	// Sweep arrival rates: faster streams leave fewer node reads per
	// object; the anytime classifier degrades gracefully instead of
	// failing (the core claim of anytime stream mining).
	fmt.Println("rate(obj/s)  mean-budget  accuracy(labelled)")
	for _, rate := range []float64{50, 100, 200, 500, 1000, 2000} {
		// Fresh classifier per rate so online learning from one sweep
		// does not leak into the next.
		clf, err := bayestree.Train(train, bayestree.TrainOptions{Loader: "emtopdown"})
		if err != nil {
			log.Fatal(err)
		}
		res, err := bayestree.RunStream(clf, items, rate,
			bayestree.Budgeter{NodesPerSecond: 4000, MaxNodes: 400}, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f  %11.1f  %.3f\n", rate, res.MeanBudget, res.Accuracy)
	}
}
