package bayestree

import (
	"path/filepath"
	"strings"
	"testing"
)

func demoDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Synthetic(SyntheticSpec{
		Name: "facade", Size: 800, Classes: 3, Features: 5,
		ModesPerClass: 3, Spread: 0.08, Overlap: 0.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainAndClassify(t *testing.T) {
	ds := demoDataset(t)
	for _, loader := range LoaderNames() {
		clf, err := Train(ds, TrainOptions{Loader: loader})
		if err != nil {
			t.Fatalf("%s: %v", loader, err)
		}
		correct := 0
		for i := 0; i < 200; i++ {
			if clf.Classify(ds.X[i], 25) == ds.Y[i] {
				correct++
			}
		}
		if correct < 140 {
			t.Errorf("%s: training accuracy %d/200 too low", loader, correct)
		}
	}
}

func TestTrainDefaultsAndErrors(t *testing.T) {
	ds := demoDataset(t)
	if _, err := Train(ds, TrainOptions{}); err != nil {
		t.Errorf("default train failed: %v", err)
	}
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Errorf("nil dataset accepted")
	}
	if _, err := Train(ds, TrainOptions{Loader: "quantum"}); err == nil {
		t.Errorf("unknown loader accepted")
	}
	cfg := DefaultConfig(ds.Dim())
	cfg.MaxLeaf = 32
	cfg.MinLeaf = 4
	if _, err := Train(ds, TrainOptions{Config: &cfg}); err != nil {
		t.Errorf("custom config failed: %v", err)
	}
}

func TestFacadeAnytimeCurve(t *testing.T) {
	ds := demoDataset(t)
	c, err := AnytimeCurve(ds, "hilbert", CurveOptions{Folds: 2, MaxNodes: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Acc) != 16 {
		t.Fatalf("curve length %d", len(c.Acc))
	}
	if _, err := AnytimeCurve(ds, "quantum", CurveOptions{}); err == nil {
		t.Errorf("unknown loader accepted")
	}
}

func TestFacadeStream(t *testing.T) {
	ds := demoDataset(t)
	clf, err := Train(ds, TrainOptions{Loader: "hilbert"})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]StreamItem, 100)
	for i := range items {
		items[i] = StreamItem{X: ds.X[i], Label: ds.Y[i], Labeled: true}
	}
	res, err := RunStream(clf, items, 100, Budgeter{NodesPerSecond: 1000, MaxNodes: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 100 || res.Learned != 100 {
		t.Fatalf("stream result %+v", res)
	}
}

func TestFacadeCSV(t *testing.T) {
	ds := demoDataset(t)
	path := filepath.Join(t.TempDir(), "f.csv")
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost rows")
	}
}

func TestLoaderNamesStable(t *testing.T) {
	names := LoaderNames()
	if len(names) < 6 {
		t.Fatalf("only %d loaders", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"emtopdown", "hilbert", "goldberger", "iterative"} {
		if !strings.Contains(joined, want) {
			t.Errorf("loader %q missing from %v", want, names)
		}
	}
}

func TestInterruptibleQueryAPI(t *testing.T) {
	ds := demoDataset(t)
	clf, err := Train(ds, TrainOptions{Loader: "emtopdown"})
	if err != nil {
		t.Fatal(err)
	}
	q := clf.NewQuery(ds.X[0])
	preds := []int{q.Predict()}
	for i := 0; i < 10 && q.Step(); i++ {
		preds = append(preds, q.Predict())
	}
	if len(preds) != 11 {
		t.Fatalf("query stopped early: %d predictions", len(preds))
	}
	post := q.Posteriors()
	if len(post) != 3 {
		t.Fatalf("posteriors over %d classes", len(post))
	}
}
