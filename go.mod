module bayestree

go 1.22
